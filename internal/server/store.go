package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/hashmap"
	"wfrc/internal/mm"
	"wfrc/internal/slotpool"
)

// StoreConfig parameterizes a sharded store.
type StoreConfig struct {
	// Shards is the number of independent shards (power of two, default
	// 4).  Each shard owns its own arena and wait-free scheme instance,
	// so shards never contend on announcement rows or free-lists.
	Shards int
	// Slots is the thread-slot count of every shard scheme — the
	// paper's NR_THREADS, and the slotpool lease capacity (default 8).
	Slots int
	// NodesPerShard sizes each shard's initial arena segment (default
	// 1<<16).
	NodesPerShard int
	// MaxNodesPerShard caps each shard's arena across runtime-attached
	// segments (README "Capacity model").  Zero (or <= NodesPerShard)
	// keeps the shard fixed at NodesPerShard — the pre-growable
	// behaviour.  wfrc-kv derives this from -max-memory.
	MaxNodesPerShard int
	// Buckets is each shard's hashmap bucket count (power of two,
	// default 256).
	Buckets int
}

func (c *StoreConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.NodesPerShard == 0 {
		c.NodesPerShard = 1 << 16
	}
	if c.Buckets == 0 {
		c.Buckets = 256
	}
}

// Store is a sharded wait-free KV store.  Every operation runs on the
// scheme thread that the caller's slotpool lease holds for the target
// shard, so the store itself has no thread bookkeeping.
type Store struct {
	cfg    StoreConfig
	shards []storeShard
	mask   uint64
}

type storeShard struct {
	scheme *core.Scheme
	m      *hashmap.Map
	ops    *atomic.Uint64 // pointer so storeShard stays copyable pre-start
}

// ArenaConfig returns the arena geometry this configuration gives each
// shard.  Capacity planners use it before the store exists: wfrc-kv
// divides its -max-memory byte budget by BytesPerNode() of this config
// to derive MaxNodesPerShard.
func (c StoreConfig) ArenaConfig() arena.Config {
	cc := c
	cc.defaults()
	return arena.Config{
		Nodes:        cc.NodesPerShard,
		MaxNodes:     cc.MaxNodesPerShard,
		LinksPerNode: 1,
		ValsPerNode:  2,
		RootLinks:    cc.Buckets + 2,
	}
}

// NewStore builds the shards.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg.defaults()
	if cfg.Shards&(cfg.Shards-1) != 0 || cfg.Shards < 1 {
		return nil, fmt.Errorf("server: Shards must be a power of two, got %d", cfg.Shards)
	}
	st := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	for i := 0; i < cfg.Shards; i++ {
		ar, err := arena.New(cfg.ArenaConfig())
		if err != nil {
			return nil, fmt.Errorf("server: shard %d arena: %w", i, err)
		}
		s, err := core.New(ar, core.Config{Threads: cfg.Slots})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d scheme: %w", i, err)
		}
		m, err := hashmap.New(s, hashmap.Config{Buckets: cfg.Buckets})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d map: %w", i, err)
		}
		st.shards = append(st.shards, storeShard{scheme: s, m: m, ops: new(atomic.Uint64)})
	}
	return st, nil
}

// Schemes returns the shard schemes in shard order — exactly the
// bundle a slotpool over this store must be built from.
func (st *Store) Schemes() []mm.Scheme {
	out := make([]mm.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// CoreSchemes returns the shard schemes with their concrete type, for
// audits and observability attachment.
func (st *Store) CoreSchemes() []*core.Scheme {
	out := make([]*core.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// Shard maps a key to its shard index.  The mix constant differs from
// the hashmap's Fibonacci multiplier so shard and bucket selection stay
// decorrelated (otherwise each shard would only ever populate a
// 1/Shards slice of its buckets).
func (st *Store) Shard(key uint64) int {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	return int((key >> 33) & st.mask)
}

// Get reads key using the lease's thread for its shard.
func (st *Store) Get(l *slotpool.Lease, key uint64) (uint64, bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Get(l.Thread(sh), key)
}

// Set upserts key→value; it reports whether a new entry was inserted.
func (st *Store) Set(l *slotpool.Lease, key, value uint64) (bool, error) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Set(l.Thread(sh), key, value)
}

// Delete removes key, reporting whether it was present.
func (st *Store) Delete(l *slotpool.Lease, key uint64) bool {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Delete(l.Thread(sh), key)
}

// CompareAndSet replaces key's value with new iff it equals old.
func (st *Store) CompareAndSet(l *slotpool.Lease, key, old, new uint64) (swapped, found bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.CompareAndSet(l.Thread(sh), key, old, new)
}

// OpCounts returns the per-shard operation counters.
func (st *Store) OpCounts() []uint64 {
	out := make([]uint64, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].ops.Load()
	}
	return out
}

// Len counts live entries across shards.  Quiescence only.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		n := st.shards[i].m.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// Audit runs every shard scheme's reference-counting and
// announcement-row audit.  Quiescence only: the slotpool over this
// store must be drained and closed first, so live entries are the only
// legitimately referenced nodes (they are link-held, which the arena
// audit accounts for by itself — extraRefs stays nil).
func (st *Store) Audit() []error {
	var errs []error
	for i := range st.shards {
		for _, err := range st.shards[i].scheme.Audit(nil) {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errs
}

// Growable reports whether the shards can attach capacity at runtime
// (MaxNodesPerShard above NodesPerShard).
func (st *Store) Growable() bool { return st.shards[0].scheme.Growable() }

// ShardCapacity is one shard's capacity snapshot (see Capacity).
type ShardCapacity struct {
	// Nodes and MaxNodes are the shard arena's attached and ceiling node
	// capacities.
	Nodes, MaxNodes int
	// Segments is the number of attached arena segments (1 = never grew).
	Segments int
	// Attaches and Refills count growth-pool events: segments attached
	// and fresh-node chains handed to starving allocators.
	Attaches, Refills uint64
}

// Capacity returns every shard's capacity snapshot, in shard order.
// Safe to call while the store serves traffic (the gauges lag attaches
// by at most one publish CAS).
func (st *Store) Capacity() []ShardCapacity {
	out := make([]ShardCapacity, len(st.shards))
	for i := range st.shards {
		s := st.shards[i].scheme
		attaches, refills := s.GrowEvents()
		out[i] = ShardCapacity{
			Nodes:    s.Capacity(),
			MaxNodes: s.MaxCapacity(),
			Segments: s.Segments(),
			Attaches: attaches,
			Refills:  refills,
		}
	}
	return out
}

// SegmentsAttached sums attached segments across shards; a value above
// Shards() means at least one shard grew past its initial capacity.
func (st *Store) SegmentsAttached() int {
	total := 0
	for _, c := range st.Capacity() {
		total += c.Segments
	}
	return total
}

// WriteProm writes the per-shard op counters and capacity gauges in
// Prometheus text format.
func (st *Store) WriteProm(w io.Writer) error {
	const name = "wfrc_server_shard_ops_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Store operations routed to each shard.\n# TYPE %s counter\n",
		name, name); err != nil {
		return err
	}
	for i, n := range st.OpCounts() {
		if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, n); err != nil {
			return err
		}
	}
	caps := st.Capacity()
	for _, m := range []struct {
		name, help, typ string
		val             func(ShardCapacity) uint64
	}{
		{"wfrc_server_shard_capacity_nodes", "Attached node capacity of each shard arena.", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.Nodes) }},
		{"wfrc_server_shard_capacity_max_nodes", "Node capacity ceiling of each shard arena.", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.MaxNodes) }},
		{"wfrc_server_shard_segments", "Arena segments attached per shard (1 = never grew).", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.Segments) }},
		{"wfrc_server_shard_segment_attaches_total", "Segments attached at runtime by each shard's growth pool.", "counter",
			func(c ShardCapacity) uint64 { return c.Attaches }},
		{"wfrc_server_shard_grow_refills_total", "Fresh-node chains spliced into free-lists per shard.", "counter",
			func(c ShardCapacity) uint64 { return c.Refills }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for i, c := range caps {
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", m.name, i, m.val(c)); err != nil {
				return err
			}
		}
	}
	return nil
}
