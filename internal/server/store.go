package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/hashmap"
	"wfrc/internal/mm"
	"wfrc/internal/slotpool"
)

// StoreConfig parameterizes a sharded store.
type StoreConfig struct {
	// Shards is the number of independent shards (power of two, default
	// 4).  Each shard owns its own arena and wait-free scheme instance,
	// so shards never contend on announcement rows or free-lists.
	Shards int
	// Slots is the thread-slot count of every shard scheme — the
	// paper's NR_THREADS, and the slotpool lease capacity (default 8).
	Slots int
	// NodesPerShard sizes each shard's arena (default 1<<16).
	NodesPerShard int
	// Buckets is each shard's hashmap bucket count (power of two,
	// default 256).
	Buckets int
}

func (c *StoreConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.NodesPerShard == 0 {
		c.NodesPerShard = 1 << 16
	}
	if c.Buckets == 0 {
		c.Buckets = 256
	}
}

// Store is a sharded wait-free KV store.  Every operation runs on the
// scheme thread that the caller's slotpool lease holds for the target
// shard, so the store itself has no thread bookkeeping.
type Store struct {
	cfg    StoreConfig
	shards []storeShard
	mask   uint64
}

type storeShard struct {
	scheme *core.Scheme
	m      *hashmap.Map
	ops    *atomic.Uint64 // pointer so storeShard stays copyable pre-start
}

// NewStore builds the shards.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg.defaults()
	if cfg.Shards&(cfg.Shards-1) != 0 || cfg.Shards < 1 {
		return nil, fmt.Errorf("server: Shards must be a power of two, got %d", cfg.Shards)
	}
	st := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	for i := 0; i < cfg.Shards; i++ {
		ar, err := arena.New(arena.Config{
			Nodes:        cfg.NodesPerShard,
			LinksPerNode: 1,
			ValsPerNode:  2,
			RootLinks:    cfg.Buckets + 2,
		})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d arena: %w", i, err)
		}
		s, err := core.New(ar, core.Config{Threads: cfg.Slots})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d scheme: %w", i, err)
		}
		m, err := hashmap.New(s, hashmap.Config{Buckets: cfg.Buckets})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d map: %w", i, err)
		}
		st.shards = append(st.shards, storeShard{scheme: s, m: m, ops: new(atomic.Uint64)})
	}
	return st, nil
}

// Schemes returns the shard schemes in shard order — exactly the
// bundle a slotpool over this store must be built from.
func (st *Store) Schemes() []mm.Scheme {
	out := make([]mm.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// CoreSchemes returns the shard schemes with their concrete type, for
// audits and observability attachment.
func (st *Store) CoreSchemes() []*core.Scheme {
	out := make([]*core.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// Shard maps a key to its shard index.  The mix constant differs from
// the hashmap's Fibonacci multiplier so shard and bucket selection stay
// decorrelated (otherwise each shard would only ever populate a
// 1/Shards slice of its buckets).
func (st *Store) Shard(key uint64) int {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	return int((key >> 33) & st.mask)
}

// Get reads key using the lease's thread for its shard.
func (st *Store) Get(l *slotpool.Lease, key uint64) (uint64, bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Get(l.Thread(sh), key)
}

// Set upserts key→value; it reports whether a new entry was inserted.
func (st *Store) Set(l *slotpool.Lease, key, value uint64) (bool, error) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Set(l.Thread(sh), key, value)
}

// Delete removes key, reporting whether it was present.
func (st *Store) Delete(l *slotpool.Lease, key uint64) bool {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Delete(l.Thread(sh), key)
}

// CompareAndSet replaces key's value with new iff it equals old.
func (st *Store) CompareAndSet(l *slotpool.Lease, key, old, new uint64) (swapped, found bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.CompareAndSet(l.Thread(sh), key, old, new)
}

// OpCounts returns the per-shard operation counters.
func (st *Store) OpCounts() []uint64 {
	out := make([]uint64, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].ops.Load()
	}
	return out
}

// Len counts live entries across shards.  Quiescence only.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		n := st.shards[i].m.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// Audit runs every shard scheme's reference-counting and
// announcement-row audit.  Quiescence only: the slotpool over this
// store must be drained and closed first, so live entries are the only
// legitimately referenced nodes (they are link-held, which the arena
// audit accounts for by itself — extraRefs stays nil).
func (st *Store) Audit() []error {
	var errs []error
	for i := range st.shards {
		for _, err := range st.shards[i].scheme.Audit(nil) {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errs
}

// WriteProm writes the per-shard op counters in Prometheus text
// format.
func (st *Store) WriteProm(w io.Writer) error {
	const name = "wfrc_server_shard_ops_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Store operations routed to each shard.\n# TYPE %s counter\n",
		name, name); err != nil {
		return err
	}
	for i, n := range st.OpCounts() {
		if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, n); err != nil {
			return err
		}
	}
	return nil
}
