package server

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/hashmap"
	"wfrc/internal/mm"
	"wfrc/internal/slotpool"
	"wfrc/internal/value"
)

// StoreConfig parameterizes a sharded store.
type StoreConfig struct {
	// Shards is the number of independent shards (power of two, default
	// 4).  Each shard owns its own arena and wait-free scheme instance,
	// so shards never contend on announcement rows or free-lists.
	Shards int
	// Slots is the thread-slot count of every shard scheme — the
	// paper's NR_THREADS, and the slotpool lease capacity (default 8).
	Slots int
	// NodesPerShard sizes each shard's initial arena segment (default
	// 1<<16).
	NodesPerShard int
	// MaxNodesPerShard caps each shard's arena across runtime-attached
	// segments (README "Capacity model").  Zero (or <= NodesPerShard)
	// keeps the shard fixed at NodesPerShard — the pre-growable
	// behaviour.  wfrc-kv derives this from -max-memory.
	MaxNodesPerShard int
	// Buckets is each shard's hashmap bucket count (power of two,
	// default 256).
	Buckets int
	// MaxValue, when positive, enables the variable-size value layer
	// (internal/value): RESP SETs carry byte payloads up to MaxValue
	// bytes, stored in size-classed blocks and freed by the node-free
	// hook when the owning node's reference count reclaims it
	// (DESIGN.md §14).  Zero keeps the store native-only: values are
	// bare uint64 words and nothing outside the arenas is allocated.
	// MaxValue may not exceed the largest default value class (16 KiB).
	MaxValue int
}

func (c *StoreConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.NodesPerShard == 0 {
		c.NodesPerShard = 1 << 16
	}
	if c.Buckets == 0 {
		c.Buckets = 256
	}
}

// Store is a sharded wait-free KV store.  Every operation runs on the
// scheme thread that the caller's slotpool lease holds for the target
// shard, so the store itself has no thread bookkeeping.
type Store struct {
	cfg    StoreConfig
	shards []storeShard
	mask   uint64
	// values is the variable-size payload layer, nil when
	// StoreConfig.MaxValue is zero.  Its Thread handles are indexed by
	// slot (lease) ID: one goroutine drives a slot at a time, across
	// every shard, so slot index is the correct single-owner key even
	// though the blocks are shared by all shards.
	values *value.Store
}

type storeShard struct {
	scheme *core.Scheme
	m      *hashmap.Map
	ops    *atomic.Uint64 // pointer so storeShard stays copyable pre-start
}

// ArenaConfig returns the arena geometry this configuration gives each
// shard.  Capacity planners use it before the store exists: wfrc-kv
// divides its -max-memory byte budget by BytesPerNode() of this config
// to derive MaxNodesPerShard.
func (c StoreConfig) ArenaConfig() arena.Config {
	cc := c
	cc.defaults()
	return arena.Config{
		Nodes:        cc.NodesPerShard,
		MaxNodes:     cc.MaxNodesPerShard,
		LinksPerNode: 1,
		ValsPerNode:  2,
		RootLinks:    cc.Buckets + 2,
	}
}

// NewStore builds the shards.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg.defaults()
	if cfg.Shards&(cfg.Shards-1) != 0 || cfg.Shards < 1 {
		return nil, fmt.Errorf("server: Shards must be a power of two, got %d", cfg.Shards)
	}
	st := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	for i := 0; i < cfg.Shards; i++ {
		ar, err := arena.New(cfg.ArenaConfig())
		if err != nil {
			return nil, fmt.Errorf("server: shard %d arena: %w", i, err)
		}
		s, err := core.New(ar, core.Config{Threads: cfg.Slots})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d scheme: %w", i, err)
		}
		m, err := hashmap.New(s, hashmap.Config{Buckets: cfg.Buckets})
		if err != nil {
			return nil, fmt.Errorf("server: shard %d map: %w", i, err)
		}
		st.shards = append(st.shards, storeShard{scheme: s, m: m, ops: new(atomic.Uint64)})
	}
	if cfg.MaxValue > 0 {
		vs, err := value.New(value.Config{Threads: cfg.Slots})
		if err != nil {
			return nil, fmt.Errorf("server: value store: %w", err)
		}
		if cfg.MaxValue > vs.MaxPayload() {
			return nil, fmt.Errorf("server: MaxValue %d exceeds the largest value class (%d bytes)",
				cfg.MaxValue, vs.MaxPayload())
		}
		st.values = vs
		for i := range st.shards {
			// The hook runs on the reclamation winner's thread with
			// exclusive ownership of the node (core lines R4/F1): free the
			// blocks behind a ref-tagged value word and clear the word, so
			// a reused node can never carry a stale ref into a second free.
			ar := st.shards[i].scheme.Arena()
			st.shards[i].scheme.SetNodeFreeHook(func(threadID int, h arena.Handle) {
				if w := ar.Val(h, 1); value.IsRef(w) {
					vs.Free(threadID, w)
					ar.SetVal(h, 1, 0)
				}
			})
		}
	}
	return st, nil
}

// Values returns the variable-size value layer, nil when disabled.
func (st *Store) Values() *value.Store { return st.values }

// MaxValue is the largest byte payload the store accepts (0 when the
// value layer is disabled).
func (st *Store) MaxValue() int {
	if st.values == nil {
		return 0
	}
	return st.cfg.MaxValue
}

// Schemes returns the shard schemes in shard order — exactly the
// bundle a slotpool over this store must be built from.
func (st *Store) Schemes() []mm.Scheme {
	out := make([]mm.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// CoreSchemes returns the shard schemes with their concrete type, for
// audits and observability attachment.
func (st *Store) CoreSchemes() []*core.Scheme {
	out := make([]*core.Scheme, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].scheme
	}
	return out
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// Shard maps a key to its shard index.  The mix constant differs from
// the hashmap's Fibonacci multiplier so shard and bucket selection stay
// decorrelated (otherwise each shard would only ever populate a
// 1/Shards slice of its buckets).
func (st *Store) Shard(key uint64) int {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	return int((key >> 33) & st.mask)
}

// Get reads key using the lease's thread for its shard.
func (st *Store) Get(l *slotpool.Lease, key uint64) (uint64, bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Get(l.Thread(sh), key)
}

// ErrReservedBit rejects native Set/CAS words that collide with the
// value layer's tag bit (proto doc: bit 63 is reserved).
var ErrReservedBit = errors.New("server: value bit 63 is reserved for the value layer (see protocol doc)")

// Set upserts key→value; it reports whether a new entry was inserted.
//
// With the value layer enabled the word is installed by node
// replacement, not in-place overwrite: the key may currently hold a
// block-backed payload, and overwriting its tagged word in place would
// orphan the blocks (and free them under a concurrent reader if we
// freed eagerly).  Replacement retires the old node, so the node-free
// hook releases any blocks exactly once.  Tagged words are rejected —
// a native client must not be able to forge a block ref.
func (st *Store) Set(l *slotpool.Lease, key, value uint64) (bool, error) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	if st.values != nil {
		if value>>63 != 0 {
			return false, ErrReservedBit
		}
		existed, err := st.shards[sh].m.Replace(l.Thread(sh), key, value)
		return !existed, err
	}
	return st.shards[sh].m.Set(l.Thread(sh), key, value)
}

// Delete removes key, reporting whether it was present.
func (st *Store) Delete(l *slotpool.Lease, key uint64) bool {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.Delete(l.Thread(sh), key)
}

// SetBytes stores a byte payload under key.  The payload is encoded
// into a tagged value word (inline or block-ref, see internal/value)
// and installed by node replacement — never by overwriting a value word
// in place, which would free the old payload's blocks under a
// concurrent reader.  The value layer must be enabled.
func (st *Store) SetBytes(l *slotpool.Lease, key uint64, payload []byte) error {
	w, err := st.values.Alloc(l.Slot(), payload)
	if err != nil {
		return err
	}
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	if _, err := st.shards[sh].m.Replace(l.Thread(sh), key, w); err != nil {
		// The word never reached a node, so it is ours to free.
		st.values.Free(l.Slot(), w)
		return err
	}
	return nil
}

// GetBytes appends key's payload to dst, decoding it while the node's
// guard is still held (a concurrent delete cannot free the blocks under
// us — the guard keeps the node, the node keeps the blocks).  Native
// uint64 values render as decimal, matching their RESP representation.
func (st *Store) GetBytes(l *slotpool.Lease, key uint64, dst []byte) ([]byte, bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	found := st.shards[sh].m.GetWith(l.Thread(sh), key, func(w uint64) {
		if st.values != nil && value.IsValue(w) {
			dst = st.values.AppendPayload(dst, w)
		} else {
			dst = strconv.AppendUint(dst, w, 10)
		}
	})
	return dst, found
}

// CompareAndSet replaces key's value with new iff it equals old.  The
// in-place CAS stays safe with the value layer enabled because the
// server rejects reserved-bit old/new words (serveRequest): a tagged
// word can then never match old, so a block-backed value can never be
// overwritten in place — the CAS just fails.
func (st *Store) CompareAndSet(l *slotpool.Lease, key, old, new uint64) (swapped, found bool) {
	sh := st.Shard(key)
	st.shards[sh].ops.Add(1)
	return st.shards[sh].m.CompareAndSet(l.Thread(sh), key, old, new)
}

// OpCounts returns the per-shard operation counters.
func (st *Store) OpCounts() []uint64 {
	out := make([]uint64, len(st.shards))
	for i := range st.shards {
		out[i] = st.shards[i].ops.Load()
	}
	return out
}

// Len counts live entries across shards.  Quiescence only.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		n := st.shards[i].m.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// Audit runs every shard scheme's reference-counting and
// announcement-row audit.  Quiescence only: the slotpool over this
// store must be drained and closed first, so live entries are the only
// legitimately referenced nodes (they are link-held, which the arena
// audit accounts for by itself — extraRefs stays nil).
func (st *Store) Audit() []error {
	var errs []error
	for i := range st.shards {
		for _, err := range st.shards[i].scheme.Audit(nil) {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	if st.values != nil {
		// Value-block conservation: every block slot must be either free
		// or referenced by exactly one live node's value word.  Nodes
		// retired before quiescence have been through the free hook by
		// now (pool Close unregisters every thread, flushing deferred
		// decrements), so any extra live slot here is a leaked payload.
		live := make(map[uint64]bool)
		for i := range st.shards {
			st.shards[i].m.Range(func(_, w uint64) {
				if value.IsRef(w) {
					live[w] = true
				}
			})
		}
		for _, err := range st.values.Audit(live) {
			errs = append(errs, fmt.Errorf("values: %w", err))
		}
	}
	return errs
}

// Growable reports whether the shards can attach capacity at runtime
// (MaxNodesPerShard above NodesPerShard).
func (st *Store) Growable() bool { return st.shards[0].scheme.Growable() }

// ShardCapacity is one shard's capacity snapshot (see Capacity).
type ShardCapacity struct {
	// Nodes and MaxNodes are the shard arena's attached and ceiling node
	// capacities.
	Nodes, MaxNodes int
	// Segments is the number of attached arena segments (1 = never grew).
	Segments int
	// Attaches and Refills count growth-pool events: segments attached
	// and fresh-node chains handed to starving allocators.
	Attaches, Refills uint64
}

// Capacity returns every shard's capacity snapshot, in shard order.
// Safe to call while the store serves traffic (the gauges lag attaches
// by at most one publish CAS).
func (st *Store) Capacity() []ShardCapacity {
	out := make([]ShardCapacity, len(st.shards))
	for i := range st.shards {
		s := st.shards[i].scheme
		attaches, refills := s.GrowEvents()
		out[i] = ShardCapacity{
			Nodes:    s.Capacity(),
			MaxNodes: s.MaxCapacity(),
			Segments: s.Segments(),
			Attaches: attaches,
			Refills:  refills,
		}
	}
	return out
}

// SegmentsAttached sums attached segments across shards; a value above
// Shards() means at least one shard grew past its initial capacity.
func (st *Store) SegmentsAttached() int {
	total := 0
	for _, c := range st.Capacity() {
		total += c.Segments
	}
	return total
}

// WriteProm writes the per-shard op counters and capacity gauges in
// Prometheus text format.
func (st *Store) WriteProm(w io.Writer) error {
	const name = "wfrc_server_shard_ops_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Store operations routed to each shard.\n# TYPE %s counter\n",
		name, name); err != nil {
		return err
	}
	for i, n := range st.OpCounts() {
		if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, n); err != nil {
			return err
		}
	}
	caps := st.Capacity()
	for _, m := range []struct {
		name, help, typ string
		val             func(ShardCapacity) uint64
	}{
		{"wfrc_server_shard_capacity_nodes", "Attached node capacity of each shard arena.", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.Nodes) }},
		{"wfrc_server_shard_capacity_max_nodes", "Node capacity ceiling of each shard arena.", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.MaxNodes) }},
		{"wfrc_server_shard_segments", "Arena segments attached per shard (1 = never grew).", "gauge",
			func(c ShardCapacity) uint64 { return uint64(c.Segments) }},
		{"wfrc_server_shard_segment_attaches_total", "Segments attached at runtime by each shard's growth pool.", "counter",
			func(c ShardCapacity) uint64 { return c.Attaches }},
		{"wfrc_server_shard_grow_refills_total", "Fresh-node chains spliced into free-lists per shard.", "counter",
			func(c ShardCapacity) uint64 { return c.Refills }},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for i, c := range caps {
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", m.name, i, m.val(c)); err != nil {
				return err
			}
		}
	}
	return nil
}
