package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"wfrc/internal/chaos"
	"wfrc/internal/obs"
	"wfrc/internal/slotpool"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

func smallStore() StoreConfig {
	return StoreConfig{Shards: 2, Slots: 4, NodesPerShard: 1 << 10, Buckets: 16}
}

func TestProtoRoundtrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: 7},
		{Op: OpSet, Key: 7, Value: 99},
		{Op: OpDel, Key: 7},
		{Op: OpCAS, Key: 7, Old: 99, Value: 100},
		{Op: OpStats},
	}
	for _, want := range reqs {
		got, err := DecodeRequest(EncodeRequest(nil, want))
		if err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Value != want.Value ||
			got.Old != want.Old || len(got.Sub) != 0 {
			t.Fatalf("roundtrip: got %+v, want %+v", got, want)
		}
	}
	if _, err := DecodeRequest([]byte{42}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := DecodeRequest([]byte{OpGet, 1, 2}); err == nil {
		t.Error("short args accepted")
	}
}

func TestKVSemanticsOverTCP(t *testing.T) {
	srv, addr := startServer(t, Config{Store: smallStore()})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, ok, _ := c.Get(1); ok {
		t.Fatal("fresh store has key 1")
	}
	if ins, err := c.Set(1, 10); err != nil || !ins {
		t.Fatalf("Set(1,10) = %v,%v", ins, err)
	}
	if ins, err := c.Set(1, 20); err != nil || ins {
		t.Fatalf("overwrite Set = %v,%v, want update", ins, err)
	}
	if v, ok, _ := c.Get(1); !ok || v != 20 {
		t.Fatalf("Get(1) = %d,%v, want 20,true", v, ok)
	}
	if swapped, found, _ := c.CompareAndSet(1, 20, 30); !swapped || !found {
		t.Fatalf("CAS(1,20,30) = %v,%v", swapped, found)
	}
	if swapped, found, _ := c.CompareAndSet(1, 20, 40); swapped || !found {
		t.Fatalf("stale CAS = %v,%v, want false,true", swapped, found)
	}
	if swapped, found, _ := c.CompareAndSet(2, 0, 1); swapped || found {
		t.Fatalf("CAS on absent key = %v,%v", swapped, found)
	}
	if ok, _ := c.Delete(1); !ok {
		t.Fatal("Delete(1) missed")
	}
	if ok, _ := c.Delete(1); ok {
		t.Fatal("double Delete hit")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pool.Leased != 1 || st.Conns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestBackpressureBusy pins every slot with idle connections and
// verifies the next connection is turned away with StatusBusy instead
// of queueing forever.
func TestBackpressureBusy(t *testing.T) {
	cfg := Config{
		Store:        StoreConfig{Shards: 1, Slots: 2, NodesPerShard: 256, Buckets: 4},
		LeaseMaxWait: 30 * time.Millisecond,
	}
	srv, addr := startServer(t, cfg)
	defer srv.Shutdown(context.Background())

	var pinned []*Client
	for i := 0; i < 2; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Set(uint64(i), 1); err != nil { // forces the lease
			t.Fatal(err)
		}
		pinned = append(pinned, c)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set(99, 1); !errors.Is(err, ErrBusy) {
		t.Fatalf("third connection: err = %v, want ErrBusy", err)
	}
	pinned[0].Close()
	// The freed slot becomes leasable; a fresh connection succeeds.
	deadlineOk := false
	for i := 0; i < 50; i++ {
		c2, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Set(100, 1); err == nil {
			c2.Close()
			deadlineOk = true
			break
		}
		c2.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !deadlineOk {
		t.Fatal("slot never freed after connection close")
	}
}

// TestConnectionDeathFreesSlotViaTTL kills a connection's process-side
// abruptly and verifies the reaper path exists for handlers that never
// run their cleanup: here we simulate by leasing directly from the pool
// and abandoning the lease.
func TestConnectionDeathFreesSlotViaTTL(t *testing.T) {
	srv, addr := startServer(t, Config{
		Store:    StoreConfig{Shards: 1, Slots: 1, NodesPerShard: 256, Buckets: 4},
		LeaseTTL: 50 * time.Millisecond,
	})
	defer srv.Shutdown(context.Background())

	// Abandon a lease taken out-of-band (the moral equivalent of a
	// handler goroutine dying without its deferred Release).
	if _, err := srv.Pool().Lease(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set(1, 1); err != nil {
		t.Fatalf("Set after abandoned lease: %v (reaper never reclaimed)", err)
	}
	if exp := srv.Pool().Stats().Expiries; exp != 1 {
		t.Fatalf("expiries = %d, want 1", exp)
	}
}

// TestGracefulShutdownZeroLeaks is the satellite acceptance test: many
// concurrent connections (more than slots) churn keys — including keys
// left live at shutdown — then SIGTERM-equivalent Shutdown must drain
// cleanly with zero arena leaks and zero announcement-row violations.
func TestGracefulShutdownZeroLeaks(t *testing.T) {
	inj := chaos.NewInjector(7, chaos.Faults{DelayProb: 0.1, DelaySpins: 16, GoschedProb: 0.1, GoschedBurst: 1})
	srv, addr := startServer(t, Config{
		Store: StoreConfig{Shards: 2, Slots: 3, NodesPerShard: 1 << 11, Buckets: 16},
		Hook:  func(slotpool.Point) { inj.Perturb() },
	})

	const workers = 9 // 3× the slot capacity
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				c, err := Dial(addr)
				if err != nil {
					t.Error(err)
					return
				}
				k := uint64(g)<<16 | uint64(i)
				if _, err := c.Set(k, k); err != nil && !errors.Is(err, ErrBusy) {
					t.Errorf("Set: %v", err)
				}
				if i%3 != 0 { // leave every third key live across shutdown
					c.Delete(k)
				}
				c.Close()
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown audit: %v", err)
	}
	if n := srv.Store().Len(); n <= 0 {
		t.Fatalf("store lost its surviving keys: Len = %d", n)
	}
	st := srv.Stats()
	if st.Pool.Violations != 0 {
		t.Fatalf("hygiene violations: %d", st.Pool.Violations)
	}
	var total uint64
	for _, n := range st.ShardOps {
		if n == 0 {
			t.Errorf("a shard saw zero ops: %v (shard hash degenerate?)", st.ShardOps)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no ops recorded")
	}
}

// TestShutdownWakesIdleConnections verifies drain does not hang on a
// connection that is parked in a blocking read.
func TestShutdownWakesIdleConnections(t *testing.T) {
	srv, addr := startServer(t, Config{Store: smallStore()})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set(1, 1); err != nil {
		t.Fatal(err)
	}
	// c now idles, holding a lease, blocked in no read at all (client
	// side); the server handler is blocked in ReadFrame.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with idle conn: %v", err)
	}
}

func TestStoreShardBalance(t *testing.T) {
	st, err := NewStore(StoreConfig{Shards: 4, Slots: 1, NodesPerShard: 256, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, st.Shards())
	for k := uint64(0); k < 4096; k++ {
		counts[st.Shard(k)]++
	}
	for i, n := range counts {
		if n < 512 || n > 1536 {
			t.Errorf("shard %d got %d of 4096 sequential keys (want ~1024)", i, n)
		}
	}
}

// TestServerSpansRecorded drives requests through the TCP path with a
// span tracer attached and checks that each request produced a span
// with the right op/status names, the shard it routed to, and the
// connection's lease wait on its first request only.
func TestServerSpansRecorded(t *testing.T) {
	store := smallStore()
	spans := obs.NewSpanTracer(store.Slots, 64, OpNames, StatusNames)
	srv, addr := startServer(t, Config{Store: store, Spans: spans, ProfLabels: true})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Set(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("Get(7) = %d,%v,%v", v, ok, err)
	}
	if _, ok, _ := c.Get(99999); ok {
		t.Fatal("phantom key")
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}

	got := spans.Snapshot()
	if len(got) != 4 || spans.Total() != 4 {
		t.Fatalf("recorded %d spans (total %d), want 4", len(got), spans.Total())
	}
	wantShard := srv.Store().Shard(7)
	checks := []struct {
		op, status string
		shard      int
	}{
		{"set", "ok", wantShard},
		{"get", "ok", wantShard},
		{"get", "not_found", srv.Store().Shard(99999)},
		{"stats", "ok", 0},
	}
	for i, want := range checks {
		sp := got[i]
		if sp.Op != want.op || sp.Status != want.status || sp.Shard != want.shard {
			t.Errorf("span %d = %s/%s shard %d, want %s/%s shard %d",
				i, sp.Op, sp.Status, sp.Shard, want.op, want.status, want.shard)
		}
		if sp.DurNS < 0 || sp.ID == 0 {
			t.Errorf("span %d has id %d dur %d", i, sp.ID, sp.DurNS)
		}
		if i > 0 && sp.LeaseWaitNS != 0 {
			t.Errorf("span %d carries lease wait %d; only the first request should", i, sp.LeaseWaitNS)
		}
	}

	// The per-op×shard histograms saw the same requests.
	if n := srv.Hists().MergedOp(int(OpGet) - 1).Count; n != 2 {
		t.Errorf("get histogram count = %d, want 2", n)
	}
	if n := srv.Hists().MergedOp(int(OpSet) - 1).Count; n != 1 {
		t.Errorf("set histogram count = %d, want 1", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.Close()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown audit: %v", err)
	}
}
