package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"wfrc/internal/resp"
)

// TestServerMemoryTelemetry drives churn through the RESP front-end and
// checks all three export surfaces of the memory-lifecycle plane: the
// INFO "# Memory" section, the wfrc_mem_* Prometheus families, and the
// STATS reply's memory snapshot.  Deleting keys retires their nodes, so
// after the churn every shard's tracker must have seen retire→reclaim
// traffic.
func TestServerMemoryTelemetry(t *testing.T) {
	srv, addr := startServer(t, Config{Store: respStore()})
	defer srv.Shutdown(context.Background())
	c, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Enough keys to land on both shards; SET+DEL churns nodes through
	// retire and reclamation.
	for round := 0; round < 20; round++ {
		for k := 0; k < 16; k++ {
			key := fmt.Sprintf("mem:%d", k)
			if r, err := c.Do("SET", key, "v"); err != nil || r.IsError() {
				t.Fatalf("SET %s: %v %+v", key, err, r)
			}
			if r, err := c.Do("DEL", key); err != nil || r.IsError() {
				t.Fatalf("DEL %s: %v %+v", key, err, r)
			}
		}
	}

	// INFO: the "# Memory" section carries per-shard lifecycle keys and
	// the occupancy gauges.
	r, err := c.Do("INFO")
	if err != nil || r.IsError() {
		t.Fatalf("INFO: %v %+v", err, r)
	}
	info := string(r.Str)
	for _, want := range []string{
		"# Memory",
		"waitfree_shard0_retired:",
		"waitfree_shard0_reclaim_lag_p99_ns:",
		"waitfree_shard1_floating_hwm:",
		"wfrc_mem_zct_depth_waitfree_shard0:",
		"wfrc_mem_pin_fastpaths_waitfree_shard1:",
		"wfrc_mem_value_blocks_live_values:",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q:\n%s", want, info)
		}
	}

	// Prometheus: the lifecycle families are present and labelled per
	// shard.
	var buf bytes.Buffer
	if err := srv.MemCollector().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		`wfrc_mem_retired_total{scheme="waitfree-shard0"}`,
		`wfrc_mem_reclaimed_total{scheme="waitfree-shard1"}`,
		`wfrc_mem_floating_hwm{scheme="waitfree-shard0"}`,
		`wfrc_mem_reclaim_lag_seconds_bucket{scheme="waitfree-shard0",le="+Inf"}`,
		`wfrc_mem_arena_segments{scheme="waitfree-shard0"}`,
		`wfrc_mem_value_blocks_live{scheme="values"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, prom)
		}
	}

	// STATS: the memory snapshot rides in the reply, with real traffic
	// on every shard's tracker.
	stats := srv.Stats()
	if stats.Memory == nil {
		t.Fatal("StatsReply.Memory is nil")
	}
	if len(stats.Memory.Schemes) != 2 {
		t.Fatalf("memory schemes = %v", stats.Memory.SchemeNames())
	}
	var retired, reclaimed uint64
	for name, ls := range stats.Memory.Schemes {
		if ls.Floating < 0 {
			t.Errorf("%s floating negative: %+v", name, ls)
		}
		if ls.FloatingHWM < ls.Floating {
			t.Errorf("%s HWM %d below floating %d", name, ls.FloatingHWM, ls.Floating)
		}
		retired += ls.Retired
		reclaimed += ls.Reclaimed
	}
	if retired == 0 || reclaimed == 0 {
		t.Fatalf("churn left no lifecycle traffic: retired=%d reclaimed=%d", retired, reclaimed)
	}
	if gotLag := func() uint64 {
		var n uint64
		for _, ls := range stats.Memory.Schemes {
			n += ls.Lag.Count
		}
		return n
	}(); gotLag == 0 {
		t.Fatal("no reclaim-lag samples despite reclaims")
	}
}
