package list

import (
	"sync"
	"testing"

	"wfrc/internal/mm"
)

func TestReplaceSequential(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)

		existed, err := l.Replace(th, 5, 50)
		if err != nil || existed {
			t.Fatalf("Replace fresh = %v,%v", existed, err)
		}
		if v, ok := l.Get(th, 5); !ok || v != 50 {
			t.Fatalf("Get(5) = %d,%v", v, ok)
		}
		existed, err = l.Replace(th, 5, 51)
		if err != nil || !existed {
			t.Fatalf("Replace existing = %v,%v", existed, err)
		}
		if v, ok := l.Get(th, 5); !ok || v != 51 {
			t.Fatalf("Get(5) after replace = %d,%v", v, ok)
		}
		if n := l.Len(); n != 1 {
			t.Fatalf("Len = %d, want 1", n)
		}
		if !l.Delete(th, 5) {
			t.Fatal("Delete(5) failed")
		}
	})
}

// TestReplaceNodeChurn verifies Replace actually retires the old node —
// the property the value layer depends on: every replaced value word
// must pass through the node-free hook exactly once.
func TestReplaceNodeChurn(t *testing.T) {
	forEachScheme(t, 32, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)
		// Far more replacements than nodes: reclamation must recycle.
		for i := 0; i < 1000; i++ {
			if _, err := l.Replace(th, 7, uint64(i)); err != nil {
				t.Fatalf("replace %d: %v", i, err)
			}
		}
		if v, ok := l.Get(th, 7); !ok || v != 999 {
			t.Fatalf("Get(7) = %d,%v", v, ok)
		}
	})
}

func TestReplaceConcurrent(t *testing.T) {
	const (
		threads = 4
		keys    = 8
		rounds  = 300
	)
	forEachScheme(t, 256, threads, func(t *testing.T, s mm.Scheme) {
		l := MustNew(s)
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				for i := 0; i < rounds; i++ {
					k := uint64(i % keys)
					if _, err := l.Replace(th, k, uint64(w*rounds+i)); err != nil {
						t.Errorf("worker %d replace: %v", w, err)
						return
					}
					l.GetWith(th, k, func(uint64) {})
				}
			}(w)
		}
		wg.Wait()
		// Every key must still resolve to exactly one live node.
		if n := l.Len(); n != keys {
			t.Fatalf("Len = %d, want %d", n, keys)
		}
	})
}

func TestGetWithAndRange(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)
		for _, k := range []uint64{2, 4, 6} {
			if _, err := l.Replace(th, k, k*100); err != nil {
				t.Fatal(err)
			}
		}
		var got uint64
		if !l.GetWith(th, 4, func(v uint64) { got = v }) {
			t.Fatal("GetWith(4) = false")
		}
		if got != 400 {
			t.Fatalf("GetWith(4) saw %d", got)
		}
		called := false
		if l.GetWith(th, 5, func(uint64) { called = true }) || called {
			t.Fatal("GetWith(5) on absent key invoked fn")
		}
		seen := map[uint64]uint64{}
		l.Range(func(k, v uint64) { seen[k] = v })
		if len(seen) != 3 || seen[2] != 200 || seen[4] != 400 || seen[6] != 600 {
			t.Fatalf("Range saw %v", seen)
		}
	})
}
