package list

import (
	"testing"

	"wfrc/internal/schemes"
)

// FuzzListVsMap drives the ordered list with byte-encoded operation
// sequences and checks observable equivalence with a Go map, over the
// wait-free scheme (whose audit also runs per input).
//
// Run with `go test -fuzz FuzzListVsMap ./internal/ds/list` to explore;
// the seed corpus runs in normal `go test`.
func FuzzListVsMap(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0x01})
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0x00})
	f.Add([]byte{0x10, 0x50, 0x90, 0x11, 0x51, 0x91})
	factory, _ := schemes.ByName("waitfree")

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			return
		}
		s, err := factory.New(arenaCfg(128), schemes.Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)
		model := map[uint64]uint64{}

		for _, op := range ops {
			key := uint64(op & 0x3f)
			switch op >> 6 {
			case 0, 2:
				ok, err := l.Insert(th, key, key*7)
				if err != nil {
					t.Skip("arena exhausted")
				}
				_, dup := model[key]
				if ok == dup {
					t.Fatalf("Insert(%d) = %v, model dup = %v", key, ok, dup)
				}
				if !dup {
					model[key] = key * 7
				}
			case 1:
				ok := l.Delete(th, key)
				if _, present := model[key]; ok != present {
					t.Fatalf("Delete(%d) = %v, model = %v", key, ok, present)
				}
				delete(model, key)
			default:
				v, ok := l.Get(th, key)
				mv, present := model[key]
				if ok != present || (ok && v != mv) {
					t.Fatalf("Get(%d) = %d,%v, model %d,%v", key, v, ok, mv, present)
				}
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", l.Len(), len(model))
		}
		// Live entries are referenced by list links only; the audit needs
		// no extra held references.
		schemes.Flush(th)
		for _, err := range schemes.AuditRC(s, nil) {
			t.Error(err)
		}
	})
}
