// Package list implements the Harris–Michael lock-free ordered linked
// list (sorted set with logical deletion marks) on top of the
// scheme-neutral mm interface.
//
// Deletion is two-phase: a node is logically deleted by setting the mark
// bit on its next pointer, then physically unlinked by whichever
// traversal gets there first.  The mark travels inside the link word
// (arena.Ptr's mark bit), so the memory-management schemes handle marked
// links transparently.
//
// Node layout: link slot 0 is the next pointer; value word 0 is the key,
// word 1 the value.
package list

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
)

// List is a lock-free sorted map from uint64 keys to uint64 values.
// Methods are safe for concurrent use; each goroutine passes its own
// registered mm.Thread.
type List struct {
	s    mm.Scheme
	ar   *arena.Arena
	head mm.LinkID
}

// New creates an empty list managed by s.  The arena must provide at
// least 1 link and 2 value words per node.
func New(s mm.Scheme) (*List, error) {
	ar := s.Arena()
	if c := ar.Config(); c.LinksPerNode < 1 || c.ValsPerNode < 2 {
		return nil, fmt.Errorf("list: arena needs ≥1 link and ≥2 values per node, have %d/%d",
			c.LinksPerNode, c.ValsPerNode)
	}
	return &List{s: s, ar: ar, head: ar.NewRoot()}, nil
}

// MustNew is New but panics on error.
func MustNew(s mm.Scheme) *List {
	l, err := New(s)
	if err != nil {
		panic(err)
	}
	return l
}

func (l *List) next(h arena.Handle) mm.LinkID { return l.ar.LinkOf(h, 0) }

// pos is a search result.  The caller holds guarded references on
// prevNode (when non-nil), cur's node and next's node, and must release
// them through release().
type pos struct {
	prev     mm.LinkID    // the link that points to cur
	prevNode arena.Handle // node owning prev; Nil when prev is the head root
	cur      mm.Ptr       // first node with key >= search key; nil at end
	next     mm.Ptr       // cur's successor (unmarked view); nil when cur is nil
	found    bool         // cur is non-nil and cur.key == search key
}

func (p *pos) release(t mm.Thread) {
	t.Release(p.next.Handle())
	t.Release(p.cur.Handle())
	t.Release(p.prevNode)
}

// find locates key, unlinking marked nodes it passes (Michael's helping
// rule).  Lock-free: a traversal restarts when a CAS race invalidates
// its position.
func (l *List) find(t mm.Thread, key uint64) pos {
retry:
	for {
		prev := l.head
		prevNode := arena.Nil
		cur := t.DeRef(prev)
		for {
			if cur.IsNil() {
				return pos{prev: prev, prevNode: prevNode, cur: cur}
			}
			next := t.DeRef(l.next(cur.Handle()))
			// Revalidate: prev must still point at an unmarked cur,
			// otherwise our position is stale.
			if t.Load(prev) != arena.MakePtr(cur.Handle(), false) {
				t.Release(next.Handle())
				t.Release(cur.Handle())
				t.Release(prevNode)
				continue retry
			}
			if next.Marked() {
				// cur is logically deleted: unlink it here.
				target := arena.MakePtr(next.Handle(), false)
				if !t.CASLink(prev, arena.MakePtr(cur.Handle(), false), target) {
					t.Release(next.Handle())
					t.Release(cur.Handle())
					t.Release(prevNode)
					continue retry
				}
				// Break the unlinked node's reference chain to its
				// successor (see arena.PoisonPtr).  Safe because no link
				// points at cur anymore: any traversal that read cur's
				// poisoned link fails its prev revalidation and retries.
				t.CASLink(l.next(cur.Handle()), next, arena.PoisonPtr)
				t.Retire(cur.Handle())
				t.Release(cur.Handle())
				cur = target // adopt next's reference as the new cur
				continue
			}
			ckey := l.ar.Val(cur.Handle(), 0)
			if ckey >= key {
				return pos{
					prev: prev, prevNode: prevNode,
					cur: cur, next: next,
					found: ckey == key,
				}
			}
			t.Release(prevNode)
			prevNode = cur.Handle()
			prev = l.next(prevNode)
			cur = next // adopt next's reference
		}
	}
}

// Insert adds key→value.  It returns false (without modifying the list)
// if the key is already present, and an error on arena exhaustion.
func (l *List) Insert(t mm.Thread, key, value uint64) (bool, error) {
	n, err := t.Alloc() // outside the pinned section
	if err != nil {
		return false, err
	}
	l.ar.SetVal(n, 0, key)
	l.ar.SetVal(n, 1, value)
	t.BeginOp()
	defer t.EndOp()
	var hooked mm.Ptr // current target of n's private next link
	for {
		p := l.find(t, key)
		if p.found {
			p.release(t)
			// Discard the unused node; its private link may reference a
			// node from an earlier retry, which reclamation cascades drop.
			t.Retire(n)
			t.Release(n)
			return false, nil
		}
		curp := arena.MakePtr(p.cur.Handle(), false)
		// n is private: this CAS cannot fail, it only moves references.
		if !t.CASLink(l.next(n), hooked, curp) {
			panic("list: private link CAS failed")
		}
		hooked = curp
		if t.CASLink(p.prev, curp, arena.MakePtr(n, false)) {
			p.release(t)
			t.Release(n)
			return true, nil
		}
		p.release(t)
	}
}

// Set stores key→value, overwriting the value of an existing entry in
// place (the node's value word is an atomic cell, so the overwrite
// linearizes at its store).  It returns whether a new entry was
// inserted, and an error on arena exhaustion — updates of existing keys
// never allocate and never fail.
//
// An update racing a Delete of the same key linearizes before the
// delete: the value write lands in a node that is (or is about to be)
// unlinked, and the key reads as absent afterwards — the same contract
// as every in-node-value Harris list.
func (l *List) Set(t mm.Thread, key, value uint64) (inserted bool, err error) {
	// Update pass: no allocation when the key is present.
	t.BeginOp()
	p := l.find(t, key)
	if p.found {
		l.ar.SetVal(p.cur.Handle(), 1, value)
		p.release(t)
		t.EndOp()
		return false, nil
	}
	p.release(t)
	t.EndOp()

	// Insert pass, mirroring Insert; a racing insert of the same key is
	// resolved by updating that winner's node in place.
	n, err := t.Alloc() // outside the pinned section (see Insert)
	if err != nil {
		return false, err
	}
	l.ar.SetVal(n, 0, key)
	l.ar.SetVal(n, 1, value)
	t.BeginOp()
	defer t.EndOp()
	var hooked mm.Ptr // current target of n's private next link
	for {
		p := l.find(t, key)
		if p.found {
			l.ar.SetVal(p.cur.Handle(), 1, value)
			p.release(t)
			t.Retire(n)
			t.Release(n)
			return false, nil
		}
		curp := arena.MakePtr(p.cur.Handle(), false)
		// n is private: this CAS cannot fail, it only moves references.
		if !t.CASLink(l.next(n), hooked, curp) {
			panic("list: private link CAS failed")
		}
		hooked = curp
		if t.CASLink(p.prev, curp, arena.MakePtr(n, false)) {
			p.release(t)
			t.Release(n)
			return true, nil
		}
		p.release(t)
	}
}

// CompareAndSet replaces key's value with new iff it currently equals
// old, via CAS on the node's value word.  It reports whether the swap
// happened and whether the key was present at all; (false, true) means
// the key exists but held a different value.
func (l *List) CompareAndSet(t mm.Thread, key, old, new uint64) (swapped, found bool) {
	t.BeginOp()
	defer t.EndOp()
	p := l.find(t, key)
	if !p.found {
		p.release(t)
		return false, false
	}
	swapped = l.ar.ValCell(p.cur.Handle(), 1).CompareAndSwap(old, new)
	p.release(t)
	return swapped, true
}

// Delete removes key.  It returns false if the key is not present.
func (l *List) Delete(t mm.Thread, key uint64) bool {
	t.BeginOp()
	defer t.EndOp()
	for {
		p := l.find(t, key)
		if !p.found {
			p.release(t)
			return false
		}
		nextUnmarked := arena.MakePtr(p.next.Handle(), false)
		// Logical deletion: mark cur's next pointer.  Losing this CAS
		// means another deleter or inserter interfered; retry from find.
		if !t.CASLink(l.next(p.cur.Handle()), nextUnmarked, nextUnmarked.WithMark(true)) {
			p.release(t)
			continue
		}
		// Physical unlink; on failure some traversal will finish the job
		// and retire the node.
		if t.CASLink(p.prev, arena.MakePtr(p.cur.Handle(), false), nextUnmarked) {
			// Break the unlinked node's chain (see arena.PoisonPtr).
			t.CASLink(l.next(p.cur.Handle()), nextUnmarked.WithMark(true), arena.PoisonPtr)
			t.Retire(p.cur.Handle())
		}
		p.release(t)
		return true
	}
}

// Get returns the value stored under key.
func (l *List) Get(t mm.Thread, key uint64) (value uint64, ok bool) {
	t.BeginOp()
	defer t.EndOp()
	p := l.find(t, key)
	if p.found {
		value = l.ar.Val(p.cur.Handle(), 1)
	}
	ok = p.found
	p.release(t)
	return value, ok
}

// GetWith invokes fn with key's value word while the node's guarded
// reference is still held, and reports whether the key was found.  This
// is the read path for values that reference external storage (the
// value layer's block refs): the guard keeps the node from being
// reclaimed — and therefore the blocks from being freed by the
// node-free hook — until fn returns, so fn may safely decode the
// payload behind the word.  fn must not call back into the list.
func (l *List) GetWith(t mm.Thread, key uint64, fn func(value uint64)) bool {
	t.BeginOp()
	defer t.EndOp()
	p := l.find(t, key)
	if p.found {
		fn(l.ar.Val(p.cur.Handle(), 1))
	}
	ok := p.found
	p.release(t)
	return ok
}

// Replace stores key→value by node replacement: any existing node for
// key is deleted (mark + unlink + retire) and a fresh private node
// carrying value is inserted.  Unlike Set it never overwrites a value
// word in place, which is the required discipline when values reference
// external storage — the old node's blocks are freed only by the
// node-free hook once every guard drops, and the new value ref is never
// exposed in a node another thread might concurrently retire.  The
// private node survives lost races (it is retired only if Replace
// returns an error, which cannot happen after allocation), so a retry
// can never double-free the new value's blocks.
//
// Replace is not atomic: a concurrent reader can observe the key absent
// between the delete and the insert — the usual cache-tier SET
// contract, not a linearizable map update.  It returns whether an
// existing entry was replaced, and an error on arena exhaustion (in
// which case the list is unmodified).
func (l *List) Replace(t mm.Thread, key, value uint64) (existed bool, err error) {
	n, err := t.Alloc() // outside the pinned section (see Insert)
	if err != nil {
		return false, err
	}
	l.ar.SetVal(n, 0, key)
	l.ar.SetVal(n, 1, value)
	t.BeginOp()
	defer t.EndOp()
	var hooked mm.Ptr // current target of n's private next link
	for {
		p := l.find(t, key)
		if p.found {
			// Delete the existing node (same two-phase discipline as
			// Delete), then retry the find to insert our private node.
			nextUnmarked := arena.MakePtr(p.next.Handle(), false)
			if !t.CASLink(l.next(p.cur.Handle()), nextUnmarked, nextUnmarked.WithMark(true)) {
				p.release(t)
				continue
			}
			existed = true
			if t.CASLink(p.prev, arena.MakePtr(p.cur.Handle(), false), nextUnmarked) {
				// Break the unlinked node's chain (see arena.PoisonPtr).
				t.CASLink(l.next(p.cur.Handle()), nextUnmarked.WithMark(true), arena.PoisonPtr)
				t.Retire(p.cur.Handle())
			}
			p.release(t)
			continue
		}
		curp := arena.MakePtr(p.cur.Handle(), false)
		// n is private: this CAS cannot fail, it only moves references.
		if !t.CASLink(l.next(n), hooked, curp) {
			panic("list: private link CAS failed")
		}
		hooked = curp
		if t.CASLink(p.prev, curp, arena.MakePtr(n, false)) {
			p.release(t)
			t.Release(n)
			return existed, nil
		}
		p.release(t)
	}
}

// Range invokes fn with every unmarked entry's key and value word, in
// key order.  Quiescence only — the drain audit uses it to collect the
// set of live value words before checking block conservation.
func (l *List) Range(fn func(key, value uint64)) {
	for p := l.ar.LoadLink(l.head); !p.IsNil(); {
		nx := l.ar.LoadLink(l.next(p.Handle()))
		if !nx.Marked() {
			fn(l.ar.Val(p.Handle(), 0), l.ar.Val(p.Handle(), 1))
		}
		p = nx.WithMark(false)
	}
}

// Contains reports whether key is present.
func (l *List) Contains(t mm.Thread, key uint64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Len walks the list counting unmarked nodes.  Quiescence only.
func (l *List) Len() int {
	n := 0
	for p := l.ar.LoadLink(l.head); !p.IsNil(); {
		nx := l.ar.LoadLink(l.next(p.Handle()))
		if !nx.Marked() {
			n++
		}
		if n > l.ar.Nodes() {
			return -1 // corrupted: cycle
		}
		p = nx.WithMark(false)
	}
	return n
}

// Keys returns the unmarked keys in order.  Quiescence only.
func (l *List) Keys() []uint64 {
	var out []uint64
	for p := l.ar.LoadLink(l.head); !p.IsNil(); {
		nx := l.ar.LoadLink(l.next(p.Handle()))
		if !nx.Marked() {
			out = append(out, l.ar.Val(p.Handle(), 0))
		}
		p = nx.WithMark(false)
	}
	return out
}
