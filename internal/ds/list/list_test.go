package list

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
	"wfrc/internal/schemes"
)

func arenaCfg(nodes int) arena.Config {
	return arena.Config{Nodes: nodes, LinksPerNode: 1, ValsPerNode: 2, RootLinks: 4}
}

func forEachScheme(t *testing.T, nodes, threads int, fn func(t *testing.T, s mm.Scheme)) {
	for _, f := range schemes.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, err := f.New(arenaCfg(nodes), schemes.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s)
			for _, err := range schemes.AuditRC(s, nil) {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

func TestSetSemanticsSequential(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)

		if l.Contains(th, 5) {
			t.Fatal("empty list contains 5")
		}
		for _, k := range []uint64{5, 1, 9, 3, 7} {
			ok, err := l.Insert(th, k, k*10)
			if err != nil || !ok {
				t.Fatalf("Insert(%d) = %v,%v", k, ok, err)
			}
		}
		if ok, _ := l.Insert(th, 5, 99); ok {
			t.Fatal("duplicate insert succeeded")
		}
		wantKeys := []uint64{1, 3, 5, 7, 9}
		if got := l.Keys(); !equalU64(got, wantKeys) {
			t.Fatalf("Keys = %v, want %v", got, wantKeys)
		}
		for _, k := range wantKeys {
			v, ok := l.Get(th, k)
			if !ok || v != k*10 {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		if !l.Delete(th, 5) {
			t.Fatal("Delete(5) failed")
		}
		if l.Delete(th, 5) {
			t.Fatal("double delete succeeded")
		}
		if l.Contains(th, 5) {
			t.Fatal("deleted key still present")
		}
		if got := l.Keys(); !equalU64(got, []uint64{1, 3, 7, 9}) {
			t.Fatalf("Keys after delete = %v", got)
		}
		if got := l.Len(); got != 4 {
			t.Fatalf("Len = %d, want 4", got)
		}
		for _, k := range []uint64{1, 3, 7, 9} {
			if !l.Delete(th, k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("Len after full delete = %d", got)
		}
	})
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoundaryKeys(t *testing.T) {
	forEachScheme(t, 16, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)
		for _, k := range []uint64{0, ^uint64(0), 1, ^uint64(0) - 1} {
			if ok, err := l.Insert(th, k, k); err != nil || !ok {
				t.Fatalf("Insert(%#x) = %v,%v", k, ok, err)
			}
		}
		if got := l.Keys(); !equalU64(got, []uint64{0, 1, ^uint64(0) - 1, ^uint64(0)}) {
			t.Fatalf("Keys = %v", got)
		}
		for _, k := range []uint64{0, ^uint64(0), 1, ^uint64(0) - 1} {
			if !l.Delete(th, k) {
				t.Fatalf("Delete(%#x) failed", k)
			}
		}
	})
}

// TestQuickAgainstMapModel replays random operation sequences against a
// Go map and checks observable equivalence (sequential linearizability).
func TestQuickAgainstMapModel(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	run := func(ops []uint16) bool {
		s, err := f.New(arenaCfg(128), schemes.Options{Threads: 1})
		if err != nil {
			return false
		}
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)
		model := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op % 32)
			switch (op / 32) % 3 {
			case 0:
				ok, err := l.Insert(th, k, k+1000)
				if err != nil {
					return false
				}
				_, dup := model[k]
				if ok == dup {
					t.Logf("Insert(%d): got %v, model dup %v", k, ok, dup)
					return false
				}
				if !dup {
					model[k] = k + 1000
				}
			case 1:
				ok := l.Delete(th, k)
				_, present := model[k]
				if ok != present {
					t.Logf("Delete(%d): got %v, model %v", k, ok, present)
					return false
				}
				delete(model, k)
			default:
				v, ok := l.Get(th, k)
				mv, present := model[k]
				if ok != present || (ok && v != mv) {
					t.Logf("Get(%d): got %d,%v, model %d,%v", k, v, ok, mv, present)
					return false
				}
			}
		}
		var want []uint64
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return equalU64(l.Keys(), want)
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 30
	}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointRanges has each thread own a key range and churn
// it; cross-thread interference would corrupt ranges it doesn't own.
func TestConcurrentDisjointRanges(t *testing.T) {
	const threads = 6
	iters := 3000
	if testing.Short() {
		iters = 300
	}
	forEachScheme(t, 512, threads, func(t *testing.T, s mm.Scheme) {
		l := MustNew(s)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				base := uint64(id) * 1000
				rng := rand.New(rand.NewSource(int64(id)))
				live := map[uint64]bool{}
				for k := 0; k < iters; k++ {
					key := base + uint64(rng.Intn(40))
					if live[key] {
						if !l.Delete(th, key) {
							t.Errorf("thread %d: Delete(%d) failed for live key", id, key)
							return
						}
						delete(live, key)
					} else {
						ok, err := l.Insert(th, key, key)
						if err != nil {
							t.Errorf("thread %d: %v", id, err)
							return
						}
						if !ok {
							t.Errorf("thread %d: Insert(%d) rejected for dead key", id, key)
							return
						}
						live[key] = true
					}
				}
				// Verify and clean up this thread's range.
				for key := range live {
					if !l.Contains(th, key) {
						t.Errorf("thread %d: key %d lost", id, key)
					}
					if !l.Delete(th, key) {
						t.Errorf("thread %d: cleanup Delete(%d) failed", id, key)
					}
				}
			}(i)
		}
		wg.Wait()
		if got := l.Len(); got != 0 {
			t.Errorf("Len after cleanup = %d, want 0 (keys: %v)", got, l.Keys())
		}
	})
}

// TestConcurrentSameKeys hammers a tiny key space from all threads so
// insert/delete/find constantly collide on the same nodes.
func TestConcurrentSameKeys(t *testing.T) {
	const threads = 8
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	forEachScheme(t, 512, threads, func(t *testing.T, s mm.Scheme) {
		l := MustNew(s)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				rng := rand.New(rand.NewSource(int64(id) * 31))
				for k := 0; k < iters; k++ {
					key := uint64(rng.Intn(8))
					switch rng.Intn(3) {
					case 0:
						if _, err := l.Insert(th, key, key); err != nil {
							t.Errorf("thread %d: %v", id, err)
							return
						}
					case 1:
						l.Delete(th, key)
					default:
						l.Get(th, key)
					}
				}
			}(i)
		}
		wg.Wait()
		// The list must still be a sorted set over the key space.
		keys := l.Keys()
		seen := map[uint64]bool{}
		for i, k := range keys {
			if k > 7 {
				t.Fatalf("alien key %d", k)
			}
			if seen[k] {
				t.Fatalf("duplicate key %d in %v", k, keys)
			}
			seen[k] = true
			if i > 0 && keys[i-1] >= k {
				t.Fatalf("unsorted keys %v", keys)
			}
		}
		// Clean up for the audit.
		th, _ := s.Register()
		for _, k := range keys {
			l.Delete(th, k)
		}
		th.Unregister()
	})
}

func TestUpsertAndCompareAndSet(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		l := MustNew(s)

		// Set on a missing key inserts.
		ins, err := l.Set(th, 4, 40)
		if err != nil || !ins {
			t.Fatalf("Set(4) = %v,%v, want insert", ins, err)
		}
		// Set on a present key updates in place, no allocation growth.
		ins, err = l.Set(th, 4, 44)
		if err != nil || ins {
			t.Fatalf("Set(4) update = %v,%v, want in-place", ins, err)
		}
		if v, ok := l.Get(th, 4); !ok || v != 44 {
			t.Fatalf("Get(4) = %d,%v, want 44", v, ok)
		}
		if n := l.Len(); n != 1 {
			t.Fatalf("Len = %d after upsert of one key", n)
		}

		// CompareAndSet with wrong expected value fails but finds the key.
		if sw, found := l.CompareAndSet(th, 4, 40, 99); sw || !found {
			t.Fatalf("CAS wrong-old = swapped=%v found=%v", sw, found)
		}
		if sw, found := l.CompareAndSet(th, 4, 44, 55); !sw || !found {
			t.Fatalf("CAS right-old = swapped=%v found=%v", sw, found)
		}
		if v, _ := l.Get(th, 4); v != 55 {
			t.Fatalf("value after CAS = %d, want 55", v)
		}
		// CAS on an absent key reports not found.
		if sw, found := l.CompareAndSet(th, 8, 0, 1); sw || found {
			t.Fatalf("CAS absent = swapped=%v found=%v", sw, found)
		}

		// Delete for the audit.
		if !l.Delete(th, 4) {
			t.Fatal("Delete(4) failed")
		}
	})
}

func TestConcurrentUpsertSameKeys(t *testing.T) {
	const threads, iters, keys = 4, 400, 8
	forEachScheme(t, 256, threads, func(t *testing.T, s mm.Scheme) {
		l := MustNew(s)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				rng := rand.New(rand.NewSource(int64(id) * 271))
				for k := 0; k < iters; k++ {
					key := uint64(rng.Intn(keys))
					switch rng.Intn(4) {
					case 0:
						if _, err := l.Set(th, key, uint64(id)<<32|uint64(k)); err != nil {
							t.Errorf("thread %d: %v", id, err)
							return
						}
					case 1:
						l.CompareAndSet(th, key, uint64(id), uint64(k))
					case 2:
						l.Delete(th, key)
					default:
						l.Get(th, key)
					}
				}
			}(i)
		}
		wg.Wait()
		ks := l.Keys()
		seen := map[uint64]bool{}
		for _, k := range ks {
			if k >= keys || seen[k] {
				t.Fatalf("bad key set %v", ks)
			}
			seen[k] = true
		}
		th, _ := s.Register()
		for _, k := range ks {
			l.Delete(th, k)
		}
		th.Unregister()
	})
}
