// Package pqueue implements a lock-free skiplist-based priority queue on
// top of the scheme-neutral mm interface.  It stands in for the
// Sundell–Tsigas lock-free priority queue (IPDPS 2003) that the paper's
// evaluation plugs the wait-free memory-management scheme into: a
// skiplist whose bottom level is the linearizable truth (a Harris-style
// marked list) and whose upper levels are shortcut hints.
//
// Deletion marks every level of the victim top-down and then claims it by
// marking the bottom-level next pointer; whoever wins that bottom CAS
// owns the removal.  Physical unlinking is done by the same helping rule
// as the ordered list, applied per level.
//
// Retirement follows an inserter/unlinker handshake (the lstate word)
// so that a node is never retired while any level still links it.  The
// original Sundell–Tsigas queue leans on reference counting for this —
// a node stays alive while any link holds a reference — but the
// scheme-neutral port also runs over hazard-, epoch- and era-based
// reclamation, where retiring a still-reachable node lets a reader walk
// into freed (and possibly reallocated) memory through a dangling
// upper-level link.  The race that creates such links: insert's phase 2
// can install an upper-level link after a concurrent deleter has marked
// the node and swept past that level.  The handshake closes it: the
// bottom-level unlinker retires the node only if the inserter had
// already published "linking done" (so every install predates the
// confirmation sweep), and otherwise abandons the node to its inserter,
// the one thread that knows when installs have stopped.  Whoever ends
// up responsible runs one full find pass over the node's key — which
// unlinks it from every level where it is still reachable — before
// calling Retire.
//
// Node layout: link slot i is the level-i next pointer (i < MaxLevel);
// value word 0 is the key (priority), word 1 the value, word 2 the
// node's tower height, word 3 the retire-handshake state (lstate).
package pqueue

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
)

// DefaultMaxLevel is the tower height cap used by NewDefault.
const DefaultMaxLevel = 8

// lsWord is the value-word index of the retire-handshake state.
const lsWord = 3

// Retire-handshake states (see the package comment).  A node moves
// lsLinking→lsLinked when its inserter finishes phase 2, or
// lsLinking→lsAbandoned when the bottom-level unlinker gets there
// first; lsLinked→lsUnlinking records the unlinker taking ownership.
const (
	lsLinking   = 0
	lsLinked    = 1
	lsUnlinking = 2
	lsAbandoned = 3
)

// Config parameterizes a skiplist priority queue.
type Config struct {
	// MaxLevel caps tower heights.  The arena must provide at least
	// MaxLevel links and 4 value words per node.  With hazard-pointer
	// memory management each thread needs about 2*MaxLevel+6 hazard
	// slots.
	MaxLevel int
}

// PQueue is a lock-free min-priority queue of (key, value) pairs with
// duplicate keys allowed.  Methods are safe for concurrent use; each
// goroutine passes its own registered mm.Thread.
type PQueue struct {
	s        mm.Scheme
	ar       *arena.Arena
	heads    []mm.LinkID // per-level head links (a head tower with no node)
	maxLevel int
	rngs     []padRng // per-thread-slot xorshift states for tower heights
	towers   []*tower // per-thread-slot scratch towers (one goroutine/slot)
}

type padRng struct {
	state uint64
	_     [7]uint64
}

// New creates an empty priority queue managed by s.
func New(s mm.Scheme, cfg Config) (*PQueue, error) {
	ml := cfg.MaxLevel
	if ml == 0 {
		ml = DefaultMaxLevel
	}
	if ml < 1 || ml > 30 {
		return nil, fmt.Errorf("pqueue: MaxLevel %d out of range [1,30]", ml)
	}
	ar := s.Arena()
	if c := ar.Config(); c.LinksPerNode < ml || c.ValsPerNode < 4 {
		return nil, fmt.Errorf("pqueue: arena needs ≥%d links and ≥4 values per node, have %d/%d",
			ml, c.LinksPerNode, c.ValsPerNode)
	}
	pq := &PQueue{
		s: s, ar: ar, maxLevel: ml,
		rngs:   make([]padRng, s.Threads()),
		towers: make([]*tower, s.Threads()),
	}
	pq.heads = make([]mm.LinkID, ml)
	for i := range pq.heads {
		pq.heads[i] = ar.NewRoot()
	}
	for i := range pq.rngs {
		pq.rngs[i].state = uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	return pq, nil
}

// MustNew is New but panics on error.
func MustNew(s mm.Scheme, cfg Config) *PQueue {
	pq, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return pq
}

// NewDefault creates a queue with DefaultMaxLevel.
func NewDefault(s mm.Scheme) (*PQueue, error) { return New(s, Config{}) }

func (pq *PQueue) link(h arena.Handle, lvl int) mm.LinkID { return pq.ar.LinkOf(h, lvl) }

func (pq *PQueue) key(h arena.Handle) uint64   { return pq.ar.Val(h, 0) }
func (pq *PQueue) value(h arena.Handle) uint64 { return pq.ar.Val(h, 1) }
func (pq *PQueue) level(h arena.Handle) int    { return int(pq.ar.Val(h, 2)) }

// randomLevel draws a geometric(1/2) tower height in [1, maxLevel],
// using a per-thread-slot xorshift so no global state is contended.
func (pq *PQueue) randomLevel(t mm.Thread) int {
	st := &pq.rngs[t.ID()].state
	x := *st
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*st = x
	lvl := 1
	for x&1 == 1 && lvl < pq.maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// tower is a full search result: per-level insertion points with guarded
// references on every stored node.
type tower struct {
	preds     []mm.LinkID
	predNodes []arena.Handle // guarded; Nil where pred is a head root
	succs     []mm.Ptr       // guarded
	hooked    []mm.Ptr       // Insert scratch: current targets of n's links
	foundEq   bool           // some level-0 successor has key == search key
	pend      []arena.Handle // bottom-unlinked nodes awaiting confirm+retire
}

func (tw *tower) release(t mm.Thread, pq *PQueue) {
	for i := 0; i < pq.maxLevel; i++ {
		// Release(Nil) is a no-op; skipping it here avoids two interface
		// calls per empty level on this per-operation path.
		if h := tw.predNodes[i]; h != arena.Nil {
			t.Release(h)
			tw.predNodes[i] = arena.Nil
		}
		if h := tw.succs[i].Handle(); h != arena.Nil {
			t.Release(h)
		}
		tw.succs[i] = arena.NilPtr
	}
}

// pendUnlinked resolves retire responsibility for a node just unlinked
// from the bottom level (a unique event: only its inserter ever links a
// node at level 0, pre-publication).  If the inserter has published
// "linking done" we take the node: it goes on the pend list for a
// confirmation pass and Retire in drainPend.  Otherwise the inserter is
// still in phase 2 and may install more upper links, so abandon the
// node to it — the failed lsLinking→lsLinked CAS at the end of Insert
// hands it the same confirm+retire duty.
func (pq *PQueue) pendUnlinked(tw *tower, h arena.Handle) {
	c := pq.ar.ValCell(h, lsWord)
	for {
		switch c.Load() {
		case lsLinked:
			if c.CompareAndSwap(lsLinked, lsUnlinking) {
				tw.pend = append(tw.pend, h)
				return
			}
		case lsLinking:
			if c.CompareAndSwap(lsLinking, lsAbandoned) {
				return
			}
		default:
			return // already owned elsewhere (unreachable: unlink is unique)
		}
	}
}

// drainPend confirms and retires every node on the op's pend list.  A
// full find pass over the node's key unlinks it from any level where it
// is still reachable — no new link can appear once its lstate has left
// lsLinking — so afterwards the node is provably unreachable and safe
// to retire under non-counting schemes.  The pass may bottom-unlink
// further claimed nodes, which pendUnlinked appends; the loop drains
// those too.  Must run inside the caller's BeginOp/EndOp section.
func (pq *PQueue) drainPend(t mm.Thread, tw *tower) {
	for len(tw.pend) > 0 {
		h := tw.pend[len(tw.pend)-1]
		tw.pend = tw.pend[:len(tw.pend)-1]
		pq.find(t, pq.key(h), true, tw)
		tw.release(t, pq)
		t.Retire(h)
	}
}

// headLink returns the level-lvl link of pred (the head root when pred is
// Nil).
func (pq *PQueue) headLink(pred arena.Handle, lvl int) mm.LinkID {
	if pred == arena.Nil {
		return pq.heads[lvl]
	}
	return pq.link(pred, lvl)
}

// find locates the insertion point for key at every level, unlinking
// marked nodes it passes.  If exclusive is true the per-level stop
// condition is "first node with key > search key" (used by Insert so
// equal priorities queue after one another); otherwise ">=".
// On return the caller owns the tower's references.
func (pq *PQueue) find(t mm.Thread, key uint64, exclusive bool, tw *tower) {
retry:
	for {
		tw.release(t, pq)
		tw.foundEq = false
		var tprev arena.Handle // traversal pred node, guarded (Nil = head)
		for lvl := pq.maxLevel - 1; lvl >= 0; lvl-- {
			prevLink := pq.headLink(tprev, lvl)
			cur := t.DeRef(prevLink)
			for {
				if cur.IsNil() {
					break // end of this level
				}
				next := t.DeRef(pq.link(cur.Handle(), lvl))
				if t.Load(prevLink) != arena.MakePtr(cur.Handle(), false) {
					t.Release(next.Handle())
					t.Release(cur.Handle())
					t.Release(tprev)
					continue retry
				}
				if next.Marked() {
					// cur is being deleted: unlink it at this level.
					target := arena.MakePtr(next.Handle(), false)
					if !t.CASLink(prevLink, arena.MakePtr(cur.Handle(), false), target) {
						t.Release(next.Handle())
						t.Release(cur.Handle())
						t.Release(tprev)
						continue retry
					}
					// Break the unlinked node's chain at this level (see
					// arena.PoisonPtr); safe for the same revalidation
					// reason as in the ordered list.
					t.CASLink(pq.link(cur.Handle(), lvl), next, arena.PoisonPtr)
					if lvl == 0 {
						pq.pendUnlinked(tw, cur.Handle())
					}
					t.Release(cur.Handle())
					cur = target // adopt next's reference
					continue
				}
				ckey := pq.key(cur.Handle())
				if ckey > key || (!exclusive && ckey == key) {
					t.Release(next.Handle()) // level stop: next is not kept
					break
				}
				if ckey == key {
					tw.foundEq = true
				}
				// Advance within the level.
				t.Release(tprev)
				tprev = cur.Handle()
				prevLink = pq.link(tprev, lvl)
				cur = next // adopt next's reference
			}
			tw.preds[lvl] = prevLink
			if tprev != arena.Nil {
				t.Copy(tprev) // stored slot keeps its own reference
			}
			tw.predNodes[lvl] = tprev
			tw.succs[lvl] = cur // transfer cur's reference to the tower
			if !cur.IsNil() && pq.key(cur.Handle()) == key {
				tw.foundEq = true
			}
		}
		t.Release(tprev)
		return
	}
}

// towerFor returns the calling thread's scratch tower.  Thread slots are
// owned by one goroutine at a time, so no synchronization is needed.
func (pq *PQueue) towerFor(t mm.Thread) *tower {
	tw := pq.towers[t.ID()]
	if tw == nil {
		tw = &tower{
			preds:     make([]mm.LinkID, pq.maxLevel),
			predNodes: make([]arena.Handle, pq.maxLevel),
			succs:     make([]mm.Ptr, pq.maxLevel),
			hooked:    make([]mm.Ptr, pq.maxLevel),
		}
		pq.towers[t.ID()] = tw
	}
	return tw
}

// Insert adds (key, value).  Duplicate keys are allowed; equal keys
// dequeue in insertion order of their towers' bottom links.
func (pq *PQueue) Insert(t mm.Thread, key, value uint64) error {
	n, err := t.Alloc() // outside the pinned section
	if err != nil {
		return err
	}
	h := pq.randomLevel(t)
	pq.ar.SetVal(n, 0, key)
	pq.ar.SetVal(n, 1, value)
	pq.ar.SetVal(n, 2, uint64(h))
	pq.ar.SetVal(n, lsWord, lsLinking)

	tw := pq.towerFor(t)
	hooked := tw.hooked[:h]
	for i := range hooked {
		hooked[i] = arena.NilPtr
	}
	t.BeginOp()
	defer t.EndOp()

	// Phase 1: link the bottom level.
	for {
		pq.find(t, key, true, tw)
		// Pre-point n's links at the successors found for each level.
		ok := true
		for lvl := 0; lvl < h; lvl++ {
			want := arena.MakePtr(tw.succs[lvl].Handle(), false)
			if hooked[lvl] == want {
				continue
			}
			if !t.CASLink(pq.link(n, lvl), hooked[lvl], want) {
				ok = false // a concurrent deleter marked our link
				break
			}
			hooked[lvl] = want
		}
		if !ok {
			// Can only happen after n is published and deleted, which is
			// impossible in phase 1 (n is still private).
			panic("pqueue: private link CAS failed before publication")
		}
		if t.CASLink(tw.preds[0], arena.MakePtr(tw.succs[0].Handle(), false), arena.MakePtr(n, false)) {
			break
		}
		// Lost the race at the bottom level; retry with a fresh tower.
	}

	// Phase 2: link upper levels.  A concurrent deleteMin may already be
	// deleting n; stop as soon as n's bottom link is marked.
	for lvl := 1; lvl < h; lvl++ {
		for {
			if t.Load(pq.link(n, 0)).Marked() {
				lvl = h // n was deleted while we were linking
				break
			}
			if t.CASLink(tw.preds[lvl], arena.MakePtr(tw.succs[lvl].Handle(), false), arena.MakePtr(n, false)) {
				break
			}
			// Stale insertion point: refresh and re-aim n's level link.
			pq.find(t, key, true, tw)
			want := arena.MakePtr(tw.succs[lvl].Handle(), false)
			if hooked[lvl] != want {
				if !t.CASLink(pq.link(n, lvl), hooked[lvl], want) {
					// Our link was marked by a deleter: n is going away.
					lvl = h
					break
				}
				hooked[lvl] = want
			}
		}
	}
	// End of phase 2: publish "linking done".  A failed CAS means the
	// bottom-level unlinker ran while we were still linking and
	// abandoned the node to us — confirm its unlink and retire it.
	if !pq.ar.ValCell(n, lsWord).CompareAndSwap(lsLinking, lsLinked) {
		tw.pend = append(tw.pend, n)
	}
	pq.drainPend(t, tw)
	tw.release(t, pq)
	t.Release(n)
	return nil
}

// DeleteMin removes and returns the minimum-key pair.  ok is false when
// the queue is empty.
func (pq *PQueue) DeleteMin(t mm.Thread) (key, value uint64, ok bool) {
	tw := pq.towerFor(t)
	t.BeginOp()
	defer t.EndOp()
retry:
	for {
		prevLink := pq.heads[0]
		var tprev arena.Handle
		cur := t.DeRef(prevLink)
		for {
			if cur.IsNil() {
				t.Release(tprev)
				pq.drainPend(t, tw)
				return 0, 0, false
			}
			next := t.DeRef(pq.link(cur.Handle(), 0))
			if t.Load(prevLink) != arena.MakePtr(cur.Handle(), false) {
				t.Release(next.Handle())
				t.Release(cur.Handle())
				t.Release(tprev)
				continue retry
			}
			if next.Marked() {
				// Already claimed by another deleter: unlink and move on.
				target := arena.MakePtr(next.Handle(), false)
				if !t.CASLink(prevLink, arena.MakePtr(cur.Handle(), false), target) {
					t.Release(next.Handle())
					t.Release(cur.Handle())
					t.Release(tprev)
					continue retry
				}
				// Break the unlinked node's bottom-level chain (see
				// arena.PoisonPtr).
				t.CASLink(pq.link(cur.Handle(), 0), next, arena.PoisonPtr)
				pq.pendUnlinked(tw, cur.Handle())
				t.Release(cur.Handle())
				cur = target
				continue
			}
			// Claim cur: mark its upper levels top-down, then decide at
			// the bottom.
			h := pq.level(cur.Handle())
			for i := h - 1; i >= 1; i-- {
				for {
					li := t.Load(pq.link(cur.Handle(), i))
					if li.Marked() {
						break
					}
					if t.CASLink(pq.link(cur.Handle(), i), li, li.WithMark(true)) {
						break
					}
				}
			}
			nextUnmarked := arena.MakePtr(next.Handle(), false)
			if t.CASLink(pq.link(cur.Handle(), 0), nextUnmarked, nextUnmarked.WithMark(true)) {
				key = pq.key(cur.Handle())
				value = pq.value(cur.Handle())
				// Physically unlink at every level via the helping search.
				pq.find(t, key, false, tw)
				tw.release(t, pq)
				pq.drainPend(t, tw)
				t.Release(next.Handle())
				t.Release(cur.Handle())
				t.Release(tprev)
				return key, value, true
			}
			// Bottom CAS lost: either another deleter claimed cur or an
			// insert slipped a node in after cur.  Re-examine cur.
			t.Release(next.Handle())
			continue
		}
	}
}

// PeekMin returns the minimum pair without removing it.
func (pq *PQueue) PeekMin(t mm.Thread) (key, value uint64, ok bool) {
	t.BeginOp()
	defer t.EndOp()
retry:
	for {
		cur := t.DeRef(pq.heads[0])
		for {
			if cur.IsNil() {
				return 0, 0, false
			}
			next := t.Load(pq.link(cur.Handle(), 0))
			if !next.Marked() {
				key = pq.key(cur.Handle())
				value = pq.value(cur.Handle())
				t.Release(cur.Handle())
				return key, value, true
			}
			// Skip claimed nodes without helping (read-only peek).
			nx := t.DeRef(pq.link(cur.Handle(), 0))
			t.Release(cur.Handle())
			if nx == arena.PoisonPtr {
				// cur was unlinked under us; restart from the head.
				continue retry
			}
			cur = nx.WithMark(false)
		}
	}
}

// Len counts live nodes at level 0.  Quiescence only.
func (pq *PQueue) Len() int {
	n := 0
	steps := 0
	for p := pq.ar.LoadLink(pq.heads[0]); !p.IsNil(); {
		nx := pq.ar.LoadLink(pq.link(p.Handle(), 0))
		if !nx.Marked() {
			n++
		}
		steps++
		if steps > pq.ar.Nodes()+1 {
			return -1 // corrupted: cycle
		}
		p = nx.WithMark(false)
	}
	return n
}

// Keys returns the live keys in order.  Quiescence only.
func (pq *PQueue) Keys() []uint64 {
	var out []uint64
	for p := pq.ar.LoadLink(pq.heads[0]); !p.IsNil(); {
		nx := pq.ar.LoadLink(pq.link(p.Handle(), 0))
		if !nx.Marked() {
			out = append(out, pq.key(p.Handle()))
		}
		p = nx.WithMark(false)
	}
	return out
}
