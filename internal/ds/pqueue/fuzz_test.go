package pqueue

import (
	"container/heap"
	"testing"

	"wfrc/internal/schemes"
)

type u64Heap []uint64

func (h u64Heap) Len() int            { return len(h) }
func (h u64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h u64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *u64Heap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *u64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// FuzzPQueueVsHeap drives the skiplist priority queue with byte-encoded
// operation sequences and checks DeleteMin/PeekMin equivalence against
// container/heap, over the wait-free scheme with a per-input audit.
//
// Run with `go test -fuzz FuzzPQueueVsHeap ./internal/ds/pqueue`.
func FuzzPQueueVsHeap(f *testing.F) {
	f.Add([]byte{0x05, 0x03, 0x80, 0x80})
	f.Add([]byte{0x10, 0x10, 0x10, 0x90, 0x90, 0x90, 0x90})
	f.Add([]byte{0x3f, 0x00, 0xc0, 0x80, 0x01, 0x80})
	factory, _ := schemes.ByName("waitfree")

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			return
		}
		s, err := factory.New(arenaCfg(512, 4), schemes.Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		th, _ := s.Register()
		defer th.Unregister()
		pq := MustNew(s, Config{MaxLevel: 4})
		model := &u64Heap{}
		heap.Init(model)

		for _, op := range ops {
			key := uint64(op & 0x3f)
			switch op >> 6 {
			case 0, 1: // insert (duplicates allowed)
				if err := pq.Insert(th, key, key); err != nil {
					t.Skip("arena exhausted")
				}
				heap.Push(model, key)
			case 2: // deleteMin
				k, _, ok := pq.DeleteMin(th)
				if model.Len() == 0 {
					if ok {
						t.Fatalf("DeleteMin on empty returned %d", k)
					}
					continue
				}
				want := heap.Pop(model).(uint64)
				if !ok || k != want {
					t.Fatalf("DeleteMin = %d,%v, want %d", k, ok, want)
				}
			default: // peek
				k, _, ok := pq.PeekMin(th)
				if model.Len() == 0 {
					if ok {
						t.Fatalf("PeekMin on empty returned %d", k)
					}
					continue
				}
				if !ok || k != (*model)[0] {
					t.Fatalf("PeekMin = %d,%v, want %d", k, ok, (*model)[0])
				}
			}
		}
		if pq.Len() != model.Len() {
			t.Fatalf("Len = %d, model %d", pq.Len(), model.Len())
		}
		schemes.Flush(th)
		for _, err := range schemes.AuditRC(s, nil) {
			t.Error(err)
		}
	})
}
