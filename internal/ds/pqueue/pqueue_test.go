package pqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
	"wfrc/internal/schemes"
)

func arenaCfg(nodes, maxLevel int) arena.Config {
	return arena.Config{Nodes: nodes, LinksPerNode: maxLevel, ValsPerNode: 4, RootLinks: maxLevel + 2}
}

func forEachScheme(t *testing.T, nodes, threads, maxLevel int, fn func(t *testing.T, s mm.Scheme, pq *PQueue)) {
	for _, f := range schemes.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, err := f.New(arenaCfg(nodes, maxLevel), schemes.Options{
				Threads:     threads,
				HazardSlots: 2*maxLevel + 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			pq, err := New(s, Config{MaxLevel: maxLevel})
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s, pq)
			for _, err := range schemes.AuditRC(s, nil) {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

func TestSortedSequential(t *testing.T) {
	forEachScheme(t, 128, 1, 4, func(t *testing.T, s mm.Scheme, pq *PQueue) {
		th, _ := s.Register()
		defer th.Unregister()

		if _, _, ok := pq.DeleteMin(th); ok {
			t.Fatal("DeleteMin on empty queue succeeded")
		}
		if _, _, ok := pq.PeekMin(th); ok {
			t.Fatal("PeekMin on empty queue succeeded")
		}
		keys := []uint64{42, 7, 99, 1, 63, 23, 5, 77, 3, 50}
		for _, k := range keys {
			if err := pq.Insert(th, k, k*2); err != nil {
				t.Fatal(err)
			}
		}
		if got := pq.Len(); got != len(keys) {
			t.Fatalf("Len = %d, want %d", got, len(keys))
		}
		sorted := append([]uint64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if k, v, ok := pq.PeekMin(th); !ok || k != 1 || v != 2 {
			t.Fatalf("PeekMin = %d,%d,%v", k, v, ok)
		}
		for _, want := range sorted {
			k, v, ok := pq.DeleteMin(th)
			if !ok || k != want || v != want*2 {
				t.Fatalf("DeleteMin = %d,%d,%v, want %d", k, v, ok, want)
			}
		}
		if _, _, ok := pq.DeleteMin(th); ok {
			t.Fatal("DeleteMin after drain succeeded")
		}
	})
}

func TestDuplicateKeys(t *testing.T) {
	forEachScheme(t, 64, 1, 4, func(t *testing.T, s mm.Scheme, pq *PQueue) {
		th, _ := s.Register()
		defer th.Unregister()
		// Three entries with the same priority, distinct values.
		for i := uint64(0); i < 3; i++ {
			if err := pq.Insert(th, 10, 100+i); err != nil {
				t.Fatal(err)
			}
		}
		if err := pq.Insert(th, 5, 55); err != nil {
			t.Fatal(err)
		}
		got := map[uint64]bool{}
		k, v, ok := pq.DeleteMin(th)
		if !ok || k != 5 || v != 55 {
			t.Fatalf("first DeleteMin = %d,%d,%v", k, v, ok)
		}
		for i := 0; i < 3; i++ {
			k, v, ok := pq.DeleteMin(th)
			if !ok || k != 10 {
				t.Fatalf("DeleteMin %d = %d,%d,%v", i, k, v, ok)
			}
			if got[v] {
				t.Fatalf("value %d delivered twice", v)
			}
			got[v] = true
		}
		if len(got) != 3 {
			t.Fatalf("got %d distinct values, want 3", len(got))
		}
	})
}

func TestInterleavedInsertDeleteMin(t *testing.T) {
	forEachScheme(t, 64, 1, 4, func(t *testing.T, s mm.Scheme, pq *PQueue) {
		th, _ := s.Register()
		defer th.Unregister()
		rng := rand.New(rand.NewSource(7))
		model := &minHeap{}
		for round := 0; round < 2000; round++ {
			if rng.Intn(2) == 0 || model.len() == 0 {
				k := uint64(rng.Intn(1000))
				if err := pq.Insert(th, k, k); err != nil {
					t.Fatal(err)
				}
				model.push(k)
			} else {
				k, _, ok := pq.DeleteMin(th)
				want := model.pop()
				if !ok || k != want {
					t.Fatalf("round %d: DeleteMin = %d,%v, want %d", round, k, ok, want)
				}
			}
		}
		for model.len() > 0 {
			k, _, ok := pq.DeleteMin(th)
			want := model.pop()
			if !ok || k != want {
				t.Fatalf("drain: DeleteMin = %d,%v, want %d", k, ok, want)
			}
		}
	})
}

// minHeap is a tiny test model.
type minHeap struct{ a []uint64 }

func (h *minHeap) len() int { return len(h.a) }
func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	for i := len(h.a) - 1; i > 0; {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}
func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.a[l] < h.a[m] {
			m = l
		}
		if r < last && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return v
}

// TestConcurrentConservation runs mixed insert/deleteMin threads and
// checks that every inserted value is delivered exactly once (counting a
// final drain), across all schemes.
func TestConcurrentConservation(t *testing.T) {
	const threads = 6
	perThread := 3000
	if testing.Short() {
		perThread = 300
	}
	forEachScheme(t, 2048, threads+1, 8, func(t *testing.T, s mm.Scheme, pq *PQueue) {
		var mu sync.Mutex
		got := make(map[uint64]int)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				rng := rand.New(rand.NewSource(int64(id) * 101))
				local := make(map[uint64]int)
				for k := 0; k < perThread; k++ {
					val := uint64(id)<<32 | uint64(k)
					if err := pq.Insert(th, uint64(rng.Intn(512)), val); err != nil {
						t.Errorf("thread %d: %v", id, err)
						return
					}
					for r := 0; r < 100; r++ {
						if _, v, ok := pq.DeleteMin(th); ok {
							local[v]++
							break
						}
					}
				}
				mu.Lock()
				for v, c := range local {
					got[v] += c
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()

		th, _ := s.Register()
		for {
			_, v, ok := pq.DeleteMin(th)
			if !ok {
				break
			}
			got[v]++
		}
		th.Unregister()

		want := threads * perThread
		if len(got) != want {
			t.Fatalf("distinct values = %d, want %d", len(got), want)
		}
		for v, c := range got {
			if c != 1 {
				t.Fatalf("value %#x delivered %d times", v, c)
			}
		}
		if pq.Len() != 0 {
			t.Fatalf("queue not empty after drain: %d", pq.Len())
		}
	})
}

// TestConcurrentOrdering checks the priority-queue ordering property that
// survives concurrency: with a prefilled queue and concurrent consumers
// only, the multiset of consumed keys equals the prefill, and each
// consumer sees non-decreasing keys.
func TestConcurrentOrdering(t *testing.T) {
	const threads = 6
	const n = 3000
	forEachScheme(t, 4096, threads+1, 8, func(t *testing.T, s mm.Scheme, pq *PQueue) {
		setup, _ := s.Register()
		for i := 0; i < n; i++ {
			if err := pq.Insert(setup, uint64(i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		setup.Unregister()

		var mu sync.Mutex
		seen := make(map[uint64]int)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				var keys []uint64
				for {
					k, _, ok := pq.DeleteMin(th)
					if !ok {
						break
					}
					keys = append(keys, k)
				}
				for i := 1; i < len(keys); i++ {
					if keys[i] <= keys[i-1] {
						t.Errorf("thread %d: non-increasing keys %d then %d", id, keys[i-1], keys[i])
						break
					}
				}
				mu.Lock()
				for _, k := range keys {
					seen[k]++
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		if len(seen) != n {
			t.Fatalf("consumed %d distinct keys, want %d", len(seen), n)
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("key %d consumed %d times", k, c)
			}
		}
	})
}

func TestConfigValidation(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(16, 2), schemes.Options{Threads: 1})
	if _, err := New(s, Config{MaxLevel: 4}); err == nil {
		t.Error("accepted arena with too few links")
	}
	if _, err := New(s, Config{MaxLevel: 31}); err == nil {
		t.Error("accepted out-of-range MaxLevel")
	}
	if _, err := New(s, Config{MaxLevel: 2}); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(16, 8), schemes.Options{Threads: 1})
	pq := MustNew(s, Config{MaxLevel: 8})
	th, _ := s.Register()
	defer th.Unregister()
	counts := make([]int, 9)
	const n = 100000
	for i := 0; i < n; i++ {
		lvl := pq.randomLevel(th)
		if lvl < 1 || lvl > 8 {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	// Geometric(1/2): level 1 should get roughly half.
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Errorf("level-1 count %d not near %d", counts[1], n/2)
	}
	if counts[8] == 0 {
		t.Error("max level never drawn")
	}
}
