package hashmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
	"wfrc/internal/schemes"
)

func arenaCfg(nodes, buckets int) arena.Config {
	return arena.Config{Nodes: nodes, LinksPerNode: 1, ValsPerNode: 2, RootLinks: buckets + 2}
}

func forEachScheme(t *testing.T, nodes, threads, buckets int, fn func(t *testing.T, s mm.Scheme, m *Map)) {
	for _, f := range schemes.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, err := f.New(arenaCfg(nodes, buckets), schemes.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(s, Config{Buckets: buckets})
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s, m)
			for _, err := range schemes.AuditRC(s, nil) {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(8, 8), schemes.Options{Threads: 1})
	if _, err := New(s, Config{Buckets: 3}); err == nil {
		t.Error("non-power-of-two bucket count accepted")
	}
	if _, err := New(s, Config{Buckets: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMapSemanticsSequential(t *testing.T) {
	forEachScheme(t, 128, 1, 8, func(t *testing.T, s mm.Scheme, m *Map) {
		th, _ := s.Register()
		defer th.Unregister()
		for k := uint64(0); k < 40; k++ {
			if ok, err := m.Insert(th, k, k*3); err != nil || !ok {
				t.Fatalf("Insert(%d) = %v,%v", k, ok, err)
			}
		}
		if ok, _ := m.Insert(th, 7, 1); ok {
			t.Fatal("duplicate insert accepted")
		}
		if got := m.Len(); got != 40 {
			t.Fatalf("Len = %d, want 40", got)
		}
		for k := uint64(0); k < 40; k++ {
			v, ok := m.Get(th, k)
			if !ok || v != k*3 {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		if m.Contains(th, 100) {
			t.Fatal("phantom key present")
		}
		for k := uint64(0); k < 40; k += 2 {
			if !m.Delete(th, k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
		if got := m.Len(); got != 20 {
			t.Fatalf("Len after deletes = %d, want 20", got)
		}
		for k := uint64(1); k < 40; k += 2 {
			m.Delete(th, k)
		}
	})
}

func TestQuickAgainstMapModel(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	run := func(ops []uint16) bool {
		s, err := f.New(arenaCfg(128, 8), schemes.Options{Threads: 1})
		if err != nil {
			return false
		}
		th, _ := s.Register()
		defer th.Unregister()
		m := MustNew(s, Config{Buckets: 8})
		model := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op % 64)
			switch (op / 64) % 3 {
			case 0:
				ok, err := m.Insert(th, k, k+5)
				if err != nil {
					return false
				}
				_, dup := model[k]
				if ok == dup {
					return false
				}
				if !dup {
					model[k] = k + 5
				}
			case 1:
				if m.Delete(th, k) != containsKey(model, k) {
					return false
				}
				delete(model, k)
			default:
				v, ok := m.Get(th, k)
				mv, present := model[k]
				if ok != present || (ok && v != mv) {
					return false
				}
			}
		}
		return m.Len() == len(model)
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

func containsKey(m map[uint64]uint64, k uint64) bool {
	_, ok := m[k]
	return ok
}

func TestConcurrentMixedChurn(t *testing.T) {
	const threads = 6
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	forEachScheme(t, 1024, threads, 16, func(t *testing.T, s mm.Scheme, m *Map) {
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				rng := rand.New(rand.NewSource(int64(id) * 997))
				for k := 0; k < iters; k++ {
					key := uint64(rng.Intn(128))
					switch rng.Intn(3) {
					case 0:
						if _, err := m.Insert(th, key, key); err != nil {
							t.Errorf("thread %d: %v", id, err)
							return
						}
					case 1:
						m.Delete(th, key)
					default:
						m.Get(th, key)
					}
				}
			}(i)
		}
		wg.Wait()
		// Consistency: no duplicates across the whole map.
		keys := m.Keys()
		seen := map[uint64]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate key %d", k)
			}
			seen[k] = true
		}
		// Clean up for the audit.
		th, _ := s.Register()
		for _, k := range keys {
			m.Delete(th, k)
		}
		th.Unregister()
	})
}

func TestBucketSpread(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(2048, 16), schemes.Options{Threads: 1})
	m := MustNew(s, Config{Buckets: 16})
	th, _ := s.Register()
	defer th.Unregister()
	for k := uint64(0); k < 1024; k++ {
		if _, err := m.Insert(th, k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Every bucket should hold a reasonable share of sequential keys.
	for i, b := range m.buckets {
		n := b.Len()
		if n < 16 || n > 256 {
			t.Errorf("bucket %d holds %d of 1024 keys: hash is skewed", i, n)
		}
	}
}

func TestSetAndCompareAndSet(t *testing.T) {
	forEachScheme(t, 128, 1, 8, func(t *testing.T, s mm.Scheme, m *Map) {
		th, _ := s.Register()
		defer th.Unregister()
		for k := uint64(0); k < 20; k++ {
			if ins, err := m.Set(th, k, k); err != nil || !ins {
				t.Fatalf("Set(%d) = %v,%v, want insert", k, ins, err)
			}
		}
		for k := uint64(0); k < 20; k++ {
			if ins, err := m.Set(th, k, k*2); err != nil || ins {
				t.Fatalf("Set(%d) update = %v,%v, want in-place", k, ins, err)
			}
		}
		if n := m.Len(); n != 20 {
			t.Fatalf("Len = %d, want 20 after upserts", n)
		}
		for k := uint64(0); k < 20; k++ {
			if v, ok := m.Get(th, k); !ok || v != k*2 {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		if sw, found := m.CompareAndSet(th, 3, 6, 7); !sw || !found {
			t.Fatalf("CAS(3,6,7) = %v,%v", sw, found)
		}
		if sw, found := m.CompareAndSet(th, 3, 6, 8); sw || !found {
			t.Fatalf("CAS stale old = %v,%v", sw, found)
		}
		if sw, found := m.CompareAndSet(th, 99, 0, 1); sw || found {
			t.Fatalf("CAS absent = %v,%v", sw, found)
		}
		for k := uint64(0); k < 20; k++ {
			if !m.Delete(th, k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
	})
}
