package hashmap_test

import (
	"fmt"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/hashmap"
	"wfrc/internal/sched"
)

// runMapScheduled drives two writers on disjoint key ranges plus one
// reader over the wait-free scheme under the deterministic scheduler
// with one PCT seed.  Disjoint keys make each writer's view
// sequentially checkable while the reader and the shared buckets still
// collide on the underlying lists; the end state and audit are
// verified after the run.
func runMapScheduled(t *testing.T, seed int64) string {
	t.Helper()
	const buckets = 4
	w := sched.NewWorld(sched.Config{Strategy: &sched.PCT{Seed: seed, Depth: 3}})
	ar := arena.MustNew(arena.Config{Nodes: 32, LinksPerNode: 1, ValsPerNode: 2, RootLinks: buckets + 2})
	s := core.MustNew(ar, core.Config{Threads: 3})
	reg := func() *core.Thread {
		th, err := s.RegisterCore()
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	tA, tB, tR := reg(), reg(), reg()
	m, err := hashmap.New(s, hashmap.Config{Buckets: buckets})
	if err != nil {
		t.Fatal(err)
	}

	want := map[uint64]uint64{} // final expected content, filled by writers
	writer := func(name string, th *core.Thread, base uint64) {
		w.Spawn(name, func(vt *sched.T) {
			vt.Instrument(th)
			for k := base; k < base+4; k++ {
				if ok, err := m.Insert(th, k, k*10); err != nil {
					panic(err)
				} else if !ok {
					panic(fmt.Sprintf("Insert(%d) found a duplicate on a fresh key", k))
				}
			}
			// Delete the two even keys; odd keys stay.
			for k := base; k < base+4; k += 2 {
				if !m.Delete(th, k) {
					panic(fmt.Sprintf("Delete(%d) missed a key this thread inserted", k))
				}
			}
			want[base+1] = (base + 1) * 10
			want[base+3] = (base + 3) * 10
		})
	}
	writer("write-a", tA, 0)
	writer("write-b", tB, 8)

	w.Spawn("reader", func(vt *sched.T) {
		vt.Instrument(tR)
		for i := 0; i < 6; i++ {
			k := uint64(i * 3 % 12)
			if v, ok := m.Get(tR, k); ok && v != k*10 {
				panic(fmt.Sprintf("Get(%d) = %d, want %d (value torn)", k, v, k*10))
			}
		}
	})

	w.AtEnd(func() error {
		for _, th := range []*core.Thread{tA, tB, tR} {
			th.SetHook(nil)
		}
		if m.Len() != len(want) {
			return fmt.Errorf("final Len = %d, want %d", m.Len(), len(want))
		}
		for k, wv := range want {
			if v, ok := m.Get(tR, k); !ok || v != wv {
				return fmt.Errorf("final Get(%d) = %d,%v, want %d,true", k, v, ok, wv)
			}
		}
		for _, th := range []*core.Thread{tA, tB, tR} {
			th.Unregister()
		}
		return sched.SortedErrors(s.Audit(nil))
	})

	if err := w.Run(); err != nil {
		t.Fatalf("seed %d: %v\n  trace: %s", seed, err, w.Trace().Encode())
	}
	return w.Trace().Encode()
}

// TestMapScheduled explores the map under a spread of PCT seeds and
// pins determinism for one of them.
func TestMapScheduled(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		runMapScheduled(t, seed)
	}
	if a, b := runMapScheduled(t, 3), runMapScheduled(t, 3); a != b {
		t.Fatalf("seed 3 is not deterministic:\n  %s\n  %s", a, b)
	}
}
