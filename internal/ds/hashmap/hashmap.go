// Package hashmap implements a fixed-bucket lock-free hash map: an array
// of Harris–Michael ordered lists indexed by a multiplicative hash.
// Like the other structures it is written once against the
// scheme-neutral mm interface and runs over every memory-management
// scheme; it exists to exercise the schemes on a many-roots workload
// (every bucket is an independent root link, so HelpDeRef traffic
// spreads across links instead of converging on one).
package hashmap

import (
	"fmt"

	"wfrc/internal/ds/list"
	"wfrc/internal/mm"
)

// Map is a lock-free map from uint64 keys to uint64 values with a fixed
// bucket count.  Methods are safe for concurrent use; each goroutine
// passes its own registered mm.Thread.
type Map struct {
	s       mm.Scheme
	buckets []*list.List
	mask    uint64
}

// Config parameterizes a Map.
type Config struct {
	// Buckets is the bucket count; it must be a power of two.  Zero
	// selects 64.  The scheme's arena must reserve at least Buckets root
	// links.
	Buckets int
}

// New creates an empty map managed by s.
func New(s mm.Scheme, cfg Config) (*Map, error) {
	n := cfg.Buckets
	if n == 0 {
		n = 64
	}
	if n&(n-1) != 0 || n < 1 {
		return nil, fmt.Errorf("hashmap: Buckets must be a power of two, got %d", n)
	}
	m := &Map{s: s, buckets: make([]*list.List, n), mask: uint64(n - 1)}
	for i := range m.buckets {
		l, err := list.New(s)
		if err != nil {
			return nil, err
		}
		m.buckets[i] = l
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(s mm.Scheme, cfg Config) *Map {
	m, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// hash is Fibonacci hashing: multiply and take the top bits.
func (m *Map) hash(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> 32 & m.mask
}

func (m *Map) bucket(key uint64) *list.List { return m.buckets[m.hash(key)] }

// Insert adds key→value; it returns false if the key is already present.
func (m *Map) Insert(t mm.Thread, key, value uint64) (bool, error) {
	return m.bucket(key).Insert(t, key, value)
}

// Set stores key→value, overwriting an existing entry in place.  It
// returns whether a new entry was inserted, and an error on arena
// exhaustion (updates never allocate).
func (m *Map) Set(t mm.Thread, key, value uint64) (bool, error) {
	return m.bucket(key).Set(t, key, value)
}

// CompareAndSet replaces key's value with new iff it currently equals
// old.  It reports whether the swap happened and whether the key was
// present at all.
func (m *Map) CompareAndSet(t mm.Thread, key, old, new uint64) (swapped, found bool) {
	return m.bucket(key).CompareAndSet(t, key, old, new)
}

// Replace stores key→value by node replacement (see list.Replace): the
// old node is deleted and a fresh node inserted, never overwriting a
// value word in place.  Required for values that reference external
// storage.  It reports whether an existing entry was replaced.
func (m *Map) Replace(t mm.Thread, key, value uint64) (existed bool, err error) {
	return m.bucket(key).Replace(t, key, value)
}

// GetWith invokes fn with key's value word while the node's guard is
// held (see list.GetWith), reporting whether the key was found.
func (m *Map) GetWith(t mm.Thread, key uint64, fn func(value uint64)) bool {
	return m.bucket(key).GetWith(t, key, fn)
}

// Range invokes fn with every live entry's key and value word.
// Quiescence only.
func (m *Map) Range(fn func(key, value uint64)) {
	for _, b := range m.buckets {
		b.Range(fn)
	}
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(t mm.Thread, key uint64) bool {
	return m.bucket(key).Delete(t, key)
}

// Get returns the value stored under key.
func (m *Map) Get(t mm.Thread, key uint64) (uint64, bool) {
	return m.bucket(key).Get(t, key)
}

// Contains reports whether key is present.
func (m *Map) Contains(t mm.Thread, key uint64) bool {
	return m.bucket(key).Contains(t, key)
}

// Len counts live entries across buckets.  Quiescence only.
func (m *Map) Len() int {
	total := 0
	for _, b := range m.buckets {
		n := b.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// Keys returns all live keys (bucket order, sorted within).  Quiescence
// only.
func (m *Map) Keys() []uint64 {
	var out []uint64
	for _, b := range m.buckets {
		out = append(out, b.Keys()...)
	}
	return out
}

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return len(m.buckets) }
