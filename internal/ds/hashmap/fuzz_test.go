package hashmap

import (
	"testing"

	"wfrc/internal/schemes"
)

// FuzzHashmap drives the bucketed hash map with byte-encoded operation
// sequences and checks observable equivalence against a Go map, over
// all seven memory-management schemes with a per-input audit.
//
// Run with `go test -fuzz FuzzHashmap ./internal/ds/hashmap` to
// explore; the seed corpus runs in normal `go test`.
func FuzzHashmap(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0x01})
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0x00})
	f.Add([]byte{0x10, 0x50, 0x90, 0x11, 0x51, 0x91})
	// Hyaline regression seed: insert/delete churn on a small key set —
	// every delete retires a list node, crossing the batch-dispatch
	// threshold (64 retires) inside one input.
	churn := make([]byte, 0, 200)
	for i := 0; i < 70; i++ {
		k := byte(i % 8)
		churn = append(churn, k, 0x40|k, 0x80|k)
	}
	f.Add(churn)
	const buckets = 8

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			return
		}
		for _, fac := range schemes.Factories() {
			fac := fac
			t.Run(fac.Name, func(t *testing.T) {
				s, err := fac.New(arenaCfg(160, buckets), schemes.Options{Threads: 1})
				if err != nil {
					t.Fatal(err)
				}
				th, err := s.Register()
				if err != nil {
					t.Fatal(err)
				}
				defer th.Unregister()
				audit := func() {
					schemes.Flush(th)
					for _, err := range schemes.AuditRC(s, nil) {
						t.Error(err)
					}
				}
				m := MustNew(s, Config{Buckets: buckets})
				model := map[uint64]uint64{}

				for _, op := range ops {
					key := uint64(op & 0x3f)
					switch op >> 6 {
					case 0, 2: // insert
						ok, err := m.Insert(th, key, key*7)
						if err != nil {
							audit()
							t.Skip("arena exhausted")
						}
						_, dup := model[key]
						if ok == dup {
							t.Fatalf("Insert(%d) = %v, model dup = %v", key, ok, dup)
						}
						if !dup {
							model[key] = key * 7
						}
					case 1: // delete
						ok := m.Delete(th, key)
						if _, present := model[key]; ok != present {
							t.Fatalf("Delete(%d) = %v, model = %v", key, ok, present)
						}
						delete(model, key)
					default: // get
						v, ok := m.Get(th, key)
						mv, present := model[key]
						if ok != present || (ok && v != mv) {
							t.Fatalf("Get(%d) = %d,%v, model %d,%v", key, v, ok, mv, present)
						}
					}
				}
				if m.Len() != len(model) {
					t.Fatalf("Len = %d, model %d", m.Len(), len(model))
				}
				audit()
			})
		}
	})
}
