package queue

import (
	"testing"

	"wfrc/internal/schemes"
)

// FuzzQueue drives the Michael–Scott queue with byte-encoded operation
// sequences and checks FIFO equivalence against a Go slice, over all
// seven memory-management schemes with a per-input audit.
//
// Run with `go test -fuzz FuzzQueue ./internal/ds/queue` to explore;
// the seed corpus runs in normal `go test`.
func FuzzQueue(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0x80})
	f.Add([]byte{0x10, 0x11, 0x12, 0x80, 0x13, 0x80, 0x80, 0x80})
	f.Add([]byte{0x80, 0x01, 0xc0, 0x80, 0xc0})
	// Hyaline regression seeds: enough enqueue/dequeue churn to cross
	// the batch-dispatch threshold (64 retires) several times in one
	// input, and a drain-to-empty tail so the final audit sees batches
	// both in flight and fully reclaimed.
	churn := make([]byte, 0, 200)
	for i := 0; i < 100; i++ {
		churn = append(churn, byte(0x01+i%0x3f), 0x80)
	}
	f.Add(churn)
	f.Add(append(append([]byte{}, churn[:130]...), 0x80, 0x80, 0x80, 0x80, 0xc0))

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			return
		}
		for _, fac := range schemes.Factories() {
			fac := fac
			t.Run(fac.Name, func(t *testing.T) {
				s, err := fac.New(arenaCfg(96), schemes.Options{Threads: 1})
				if err != nil {
					t.Fatal(err)
				}
				th, err := s.Register()
				if err != nil {
					t.Fatal(err)
				}
				defer th.Unregister()
				audit := func() {
					schemes.Flush(th)
					for _, err := range schemes.AuditRC(s, nil) {
						t.Error(err)
					}
				}
				q, err := New(s, th)
				if err != nil {
					t.Skip("arena exhausted at sentinel")
				}
				var model []uint64

				for _, op := range ops {
					v := uint64(op & 0x3f)
					switch op >> 6 {
					case 0, 1: // enqueue
						if err := q.Enqueue(th, v); err != nil {
							// Deferred-reclamation schemes legitimately hold
							// freed nodes; treat exhaustion as end of input
							// but still require a clean audit.
							audit()
							t.Skip("arena exhausted")
						}
						model = append(model, v)
					case 2: // dequeue
						got, ok := q.Dequeue(th)
						if len(model) == 0 {
							if ok {
								t.Fatalf("Dequeue on empty returned %d", got)
							}
							continue
						}
						want := model[0]
						model = model[1:]
						if !ok || got != want {
							t.Fatalf("Dequeue = %d,%v, want %d,true", got, ok, want)
						}
					default: // length probe
						if got := q.Len(); got != len(model) {
							t.Fatalf("Len = %d, model %d", got, len(model))
						}
					}
				}
				if got := q.Len(); got != len(model) {
					t.Fatalf("final Len = %d, model %d", got, len(model))
				}
				audit()
			})
		}
	})
}
