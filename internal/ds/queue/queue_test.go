package queue

import (
	"sync"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
	"wfrc/internal/schemes"
)

func arenaCfg(nodes int) arena.Config {
	return arena.Config{Nodes: nodes, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 4}
}

func forEachScheme(t *testing.T, nodes, threads int, fn func(t *testing.T, s mm.Scheme)) {
	for _, f := range schemes.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, err := f.New(arenaCfg(nodes), schemes.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s)
			for _, err := range schemes.AuditRC(s, nil) {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

func TestFIFOSequential(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		q := MustNew(s, th)

		if _, ok := q.Dequeue(th); ok {
			t.Fatal("dequeue from empty queue succeeded")
		}
		for i := uint64(1); i <= 10; i++ {
			if err := q.Enqueue(th, i); err != nil {
				t.Fatal(err)
			}
		}
		if got := q.Len(); got != 10 {
			t.Fatalf("Len = %d, want 10", got)
		}
		for want := uint64(1); want <= 10; want++ {
			v, ok := q.Dequeue(th)
			if !ok || v != want {
				t.Fatalf("Dequeue = %d,%v, want %d,true", v, ok, want)
			}
		}
		if _, ok := q.Dequeue(th); ok {
			t.Fatal("dequeue after drain succeeded")
		}
		if got := q.Len(); got != 0 {
			t.Fatalf("Len after drain = %d, want 0", got)
		}
	})
}

func TestEnqueueDequeueCycles(t *testing.T) {
	forEachScheme(t, 16, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		q := MustNew(s, th)
		next := uint64(0)
		expect := uint64(0)
		for round := 0; round < 300; round++ {
			for i := 0; i < 4; i++ {
				if err := q.Enqueue(th, next); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				next++
			}
			for i := 0; i < 4; i++ {
				v, ok := q.Dequeue(th)
				if !ok || v != expect {
					t.Fatalf("round %d: dequeue = %d,%v want %d", round, v, ok, expect)
				}
				expect++
			}
		}
	})
}

// TestPerProducerOrder checks the FIFO property that matters under
// concurrency: each producer's values are dequeued in its production
// order.
func TestPerProducerOrder(t *testing.T) {
	const producers = 4
	perProducer := 4000
	if testing.Short() {
		perProducer = 400
	}
	forEachScheme(t, 1024, producers+2, func(t *testing.T, s mm.Scheme) {
		setup, _ := s.Register()
		q := MustNew(s, setup)
		setup.Unregister()

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				for k := 0; k < perProducer; k++ {
					if err := q.Enqueue(th, uint64(id)<<32|uint64(k)); err != nil {
						t.Errorf("producer %d: %v", id, err)
						return
					}
					// Keep the live set within the arena.
					if k%2 == 1 {
						q.Dequeue(th)
						q.Dequeue(th)
					}
				}
			}(p)
		}

		lastSeen := make([]int64, producers)
		for i := range lastSeen {
			lastSeen[i] = -1
		}
		consumer, _ := s.Register()
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		check := func(v uint64) {
			id, seq := int(v>>32), int64(v&0xffffffff)
			if seq <= lastSeen[id] {
				t.Errorf("producer %d: value %d dequeued after %d", id, seq, lastSeen[id])
			}
			lastSeen[id] = seq
		}
		_ = check
		<-done
		// Per-producer order across multiple concurrent consumers is not
		// observable without extra bookkeeping; validate with a single
		// consumer over the residue.
		for {
			v, ok := q.Dequeue(consumer)
			if !ok {
				break
			}
			check(v)
		}
		consumer.Unregister()
	})
}

// TestConcurrentConservation checks every enqueued value is dequeued
// exactly once across concurrent producers and consumers.
func TestConcurrentConservation(t *testing.T) {
	const threads = 8
	perThread := 5000
	if testing.Short() {
		perThread = 500
	}
	forEachScheme(t, 1024, threads+1, func(t *testing.T, s mm.Scheme) {
		setup, _ := s.Register()
		q := MustNew(s, setup)
		setup.Unregister()

		var mu sync.Mutex
		got := make(map[uint64]int)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				local := make(map[uint64]int)
				for k := 0; k < perThread; k++ {
					if err := q.Enqueue(th, uint64(id)<<32|uint64(k)); err != nil {
						t.Errorf("thread %d: %v", id, err)
						return
					}
					// Dequeue with retries: a failed dequeue permanently
					// grows the queue (reflected random walk), which would
					// outgrow the arena over enough iterations.
					for r := 0; r < 100; r++ {
						if v, ok := q.Dequeue(th); ok {
							local[v]++
							break
						}
					}
				}
				mu.Lock()
				for v, c := range local {
					got[v] += c
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()

		th, _ := s.Register()
		for _, v := range q.Drain(th) {
			got[v]++
		}
		th.Unregister()

		want := threads * perThread
		if len(got) != want {
			t.Fatalf("distinct values = %d, want %d", len(got), want)
		}
		for v, c := range got {
			if c != 1 {
				t.Fatalf("value %#x dequeued %d times", v, c)
			}
		}
	})
}

func TestQueueExhaustion(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(3), schemes.Options{Threads: 1})
	th, _ := s.Register()
	defer th.Unregister()
	q := MustNew(s, th) // consumes one node for the dummy
	if err := q.Enqueue(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(th, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(th, 3); err == nil {
		t.Fatal("enqueue on exhausted arena succeeded")
	}
	q.Drain(th)
	if err := q.Enqueue(th, 4); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}
