package queue_test

import (
	"fmt"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/queue"
	"wfrc/internal/sched"
)

// runQueueMPMC drives a 2-producer / 1-consumer queue over the wait-free
// scheme under the deterministic scheduler with one PCT seed, asserting
// per-producer FIFO order and a clean end-of-run audit.  It returns the
// encoded schedule so callers can check determinism.
func runQueueMPMC(t *testing.T, seed int64) string {
	t.Helper()
	w := sched.NewWorld(sched.Config{Strategy: &sched.PCT{Seed: seed, Depth: 3}})
	ar := arena.MustNew(arena.Config{Nodes: 16, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 4})
	s := core.MustNew(ar, core.Config{Threads: 3})
	reg := func() *core.Thread {
		th, err := s.RegisterCore()
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	tA, tB, tC := reg(), reg(), reg()
	q, err := queue.New(s, tA)
	if err != nil {
		t.Fatal(err)
	}

	const perProducer = 3
	produced, consumed := 0, 0
	producer := func(name string, th *core.Thread, base uint64) {
		w.Spawn(name, func(vt *sched.T) {
			vt.Instrument(th)
			for i := uint64(1); i <= perProducer; i++ {
				if err := q.Enqueue(th, base+i); err != nil {
					panic(err)
				}
				produced++
			}
		})
	}
	producer("prod-a", tA, 0)
	producer("prod-b", tB, 100)

	w.Spawn("consumer", func(vt *sched.T) {
		vt.Instrument(tC)
		// Youngest-seen value per producer: a queue dequeue must never
		// reorder two enqueues of the same thread.
		lastSeen := map[uint64]uint64{0: 0, 100: 100}
		for consumed < 2*perProducer {
			vt.BlockUntil(func() bool { return produced > consumed })
			v, ok := q.Dequeue(tC)
			if !ok {
				continue
			}
			base := (v / 100) * 100
			if last, known := lastSeen[base]; !known || v <= last {
				panic(fmt.Sprintf("dequeued %d after %d: per-producer FIFO violated", v, lastSeen[base]))
			}
			lastSeen[base] = v
			consumed++
		}
	})

	w.AtEnd(func() error {
		for _, th := range []*core.Thread{tA, tB, tC} {
			th.SetHook(nil)
		}
		if rest := q.Drain(tC); len(rest) != 0 {
			return fmt.Errorf("queue not empty after consuming everything: %v", rest)
		}
		for _, th := range []*core.Thread{tA, tB, tC} {
			th.Unregister()
		}
		return sched.SortedErrors(s.Audit(nil))
	})

	if err := w.Run(); err != nil {
		t.Fatalf("seed %d: %v\n  trace: %s", seed, err, w.Trace().Encode())
	}
	return w.Trace().Encode()
}

// TestQueueMPMCScheduled explores the queue under a spread of PCT seeds
// and pins determinism for one of them.
func TestQueueMPMCScheduled(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		runQueueMPMC(t, seed)
	}
	if a, b := runQueueMPMC(t, 3), runQueueMPMC(t, 3); a != b {
		t.Fatalf("seed 3 is not deterministic:\n  %s\n  %s", a, b)
	}
}
