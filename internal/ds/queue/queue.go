// Package queue implements the Michael–Scott lock-free FIFO queue on top
// of the scheme-neutral mm interface.  Michael and Scott's memory
// management correction (TR 1995) is one of the paper's starting points;
// here the queue runs unchanged over wait-free reference counting, the
// Valois baseline, hazard pointers, epochs and the lock-based scheme.
//
// Node layout: link slot 0 is the next pointer, value word 0 the payload.
// The queue maintains a dummy node: head always points at the node whose
// successor holds the front value.
package queue

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
)

// Queue is a lock-free FIFO of uint64 values.  Methods are safe for
// concurrent use; each goroutine passes its own registered mm.Thread.
type Queue struct {
	s    mm.Scheme
	ar   *arena.Arena
	head mm.LinkID
	tail mm.LinkID
}

// New creates an empty queue managed by s, allocating the initial dummy
// node with t.  The arena must provide at least 1 link and 1 value word
// per node.
func New(s mm.Scheme, t mm.Thread) (*Queue, error) {
	ar := s.Arena()
	if c := ar.Config(); c.LinksPerNode < 1 || c.ValsPerNode < 1 {
		return nil, fmt.Errorf("queue: arena needs ≥1 link and ≥1 value per node, have %d/%d",
			c.LinksPerNode, c.ValsPerNode)
	}
	q := &Queue{s: s, ar: ar, head: ar.NewRoot(), tail: ar.NewRoot()}
	dummy, err := t.Alloc()
	if err != nil {
		return nil, fmt.Errorf("queue: allocating dummy: %w", err)
	}
	dp := arena.MakePtr(dummy, false)
	t.StoreLink(q.head, dp)
	t.StoreLink(q.tail, dp)
	t.Release(dummy)
	return q, nil
}

// MustNew is New but panics on error.
func MustNew(s mm.Scheme, t mm.Thread) *Queue {
	q, err := New(s, t)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Queue) next(h arena.Handle) mm.LinkID { return q.ar.LinkOf(h, 0) }

// Enqueue appends v.  It fails only on arena exhaustion.
func (q *Queue) Enqueue(t mm.Thread, v uint64) error {
	n, err := t.Alloc() // outside the pinned section (see mm.Thread.Alloc)
	if err != nil {
		return err
	}
	q.ar.SetVal(n, 0, v)
	np := arena.MakePtr(n, false)
	t.BeginOp()
	for {
		tail := t.DeRef(q.tail)
		next := t.DeRef(q.next(tail.Handle()))
		if !next.IsNil() {
			// Tail is lagging: help swing it forward and retry.
			t.CASLink(q.tail, tail, next)
			t.Release(next.Handle())
			t.Release(tail.Handle())
			continue
		}
		if t.CASLink(q.next(tail.Handle()), arena.NilPtr, np) {
			// Swing tail; failure is benign (another thread helped).
			t.CASLink(q.tail, tail, np)
			t.Release(tail.Handle())
			break
		}
		t.Release(tail.Handle())
	}
	t.Release(n)
	t.EndOp()
	return nil
}

// Dequeue removes and returns the front value.  ok is false when the
// queue is empty.
func (q *Queue) Dequeue(t mm.Thread) (v uint64, ok bool) {
	t.BeginOp()
	defer t.EndOp()
	for {
		head := t.DeRef(q.head)
		next := t.DeRef(q.next(head.Handle()))
		if next == arena.PoisonPtr {
			// head was already advanced past and poisoned; retry with a
			// fresh head.
			t.Release(head.Handle())
			continue
		}
		if next.IsNil() {
			t.Release(head.Handle())
			return 0, false
		}
		if tail := t.Load(q.tail); tail.Handle() == head.Handle() {
			// Tail lags behind head: help swing it before advancing head,
			// or the dummy could overtake tail.
			tailp := t.DeRef(q.tail)
			if tailp.Handle() == head.Handle() {
				t.CASLink(q.tail, tailp, next)
			}
			t.Release(tailp.Handle())
			t.Release(next.Handle())
			t.Release(head.Handle())
			continue
		}
		v = q.ar.Val(next.Handle(), 0)
		if t.CASLink(q.head, head, next) {
			// Break the reference chain from the removed dummy to its
			// successor (see arena.PoisonPtr).  Without this, one slow
			// thread holding an old dummy transitively retains every
			// node dequeued since.
			t.CASLink(q.next(head.Handle()), next, arena.PoisonPtr)
			t.Retire(head.Handle())
			t.Release(next.Handle())
			t.Release(head.Handle())
			return v, true
		}
		t.Release(next.Handle())
		t.Release(head.Handle())
	}
}

// Len walks the queue and returns its length.  Quiescence only.
func (q *Queue) Len() int {
	n := -1 // skip the dummy
	for p := q.ar.LoadLink(q.head); !p.IsNil(); p = q.ar.LoadLink(q.next(p.Handle())) {
		n++
		if n > q.ar.Nodes() {
			return -1 // corrupted: cycle
		}
	}
	return n
}

// Drain dequeues until empty and returns the values; for teardown.
func (q *Queue) Drain(t mm.Thread) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(t)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
