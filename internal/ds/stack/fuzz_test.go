package stack

import (
	"testing"

	"wfrc/internal/schemes"
)

// FuzzStack drives the Treiber stack with byte-encoded operation
// sequences and checks LIFO equivalence against a Go slice, over all
// seven memory-management schemes with a per-input audit.
//
// Run with `go test -fuzz FuzzStack ./internal/ds/stack` to explore;
// the seed corpus runs in normal `go test`.
func FuzzStack(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0x80})
	f.Add([]byte{0x10, 0x11, 0xc0, 0x80, 0x12, 0x80, 0x80})
	f.Add([]byte{0x80, 0xc0, 0x01, 0xc0, 0x80, 0x80})
	// Hyaline regression seed: push/pop churn past the batch-dispatch
	// threshold (64 retires) with interleaved peeks, so retirement
	// batches build and free while the stack stays non-empty.
	churn := make([]byte, 0, 210)
	for i := 0; i < 70; i++ {
		churn = append(churn, byte(0x01+i%0x3f), 0xc0, 0x80)
	}
	f.Add(churn)

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			return
		}
		for _, fac := range schemes.Factories() {
			fac := fac
			t.Run(fac.Name, func(t *testing.T) {
				s, err := fac.New(arenaCfg(96), schemes.Options{Threads: 1})
				if err != nil {
					t.Fatal(err)
				}
				th, err := s.Register()
				if err != nil {
					t.Fatal(err)
				}
				defer th.Unregister()
				audit := func() {
					schemes.Flush(th)
					for _, err := range schemes.AuditRC(s, nil) {
						t.Error(err)
					}
				}
				st := MustNew(s)
				var model []uint64

				for _, op := range ops {
					v := uint64(op & 0x3f)
					switch op >> 6 {
					case 0, 1: // push
						if err := st.Push(th, v); err != nil {
							audit()
							t.Skip("arena exhausted")
						}
						model = append(model, v)
					case 2: // pop
						got, ok := st.Pop(th)
						if len(model) == 0 {
							if ok {
								t.Fatalf("Pop on empty returned %d", got)
							}
							continue
						}
						want := model[len(model)-1]
						model = model[:len(model)-1]
						if !ok || got != want {
							t.Fatalf("Pop = %d,%v, want %d,true", got, ok, want)
						}
					default: // peek
						got, ok := st.Peek(th)
						if len(model) == 0 {
							if ok {
								t.Fatalf("Peek on empty returned %d", got)
							}
							continue
						}
						if !ok || got != model[len(model)-1] {
							t.Fatalf("Peek = %d,%v, want %d,true", got, ok, model[len(model)-1])
						}
					}
				}
				if got := st.Len(); got != len(model) {
					t.Fatalf("final Len = %d, model %d", got, len(model))
				}
				audit()
			})
		}
	})
}
