// Package stack implements a Treiber stack on top of the scheme-neutral
// mm interface, following the paper's §3.2 user model: every link update
// goes through CASLink (which, on the wait-free scheme, helps pending
// dereference announcements), every dereference through DeRef, and every
// acquired reference is released exactly once.
//
// Node layout: link slot 0 is the next pointer, value word 0 the payload.
package stack

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
)

// Stack is a lock-free LIFO of uint64 values.  Methods are safe for
// concurrent use; each goroutine passes its own registered mm.Thread.
type Stack struct {
	s   mm.Scheme
	ar  *arena.Arena
	top mm.LinkID
}

// New creates an empty stack managed by s.  The scheme's arena must
// provide at least 1 link and 1 value word per node.
func New(s mm.Scheme) (*Stack, error) {
	ar := s.Arena()
	if c := ar.Config(); c.LinksPerNode < 1 || c.ValsPerNode < 1 {
		return nil, fmt.Errorf("stack: arena needs ≥1 link and ≥1 value per node, have %d/%d",
			c.LinksPerNode, c.ValsPerNode)
	}
	return &Stack{s: s, ar: ar, top: ar.NewRoot()}, nil
}

// MustNew is New but panics on error.
func MustNew(s mm.Scheme) *Stack {
	st, err := New(s)
	if err != nil {
		panic(err)
	}
	return st
}

func (st *Stack) next(h arena.Handle) mm.LinkID { return st.ar.LinkOf(h, 0) }

// Push adds v on top of the stack.  It fails only on arena exhaustion.
func (st *Stack) Push(t mm.Thread, v uint64) error {
	n, err := t.Alloc() // outside the pinned section (see mm.Thread.Alloc)
	if err != nil {
		return err
	}
	st.ar.SetVal(n, 0, v)
	t.BeginOp()
	np := arena.MakePtr(n, false)
	var cur mm.Ptr // current value of the private node's next link
	for {
		top := t.DeRef(st.top)
		// n is still private, so this CAS cannot fail; it exists to move
		// the link's reference from the previous retry's target.
		if !t.CASLink(st.next(n), cur, top) {
			panic("stack: private link CAS failed")
		}
		cur = top
		if t.CASLink(st.top, top, np) {
			t.Release(top.Handle())
			break
		}
		t.Release(top.Handle())
	}
	t.Release(n)
	t.EndOp()
	return nil
}

// Pop removes and returns the top value.  ok is false when the stack is
// empty.
func (st *Stack) Pop(t mm.Thread) (v uint64, ok bool) {
	t.BeginOp()
	defer t.EndOp()
	for {
		top := t.DeRef(st.top)
		if top.IsNil() {
			return 0, false
		}
		next := t.DeRef(st.next(top.Handle()))
		if next == arena.PoisonPtr {
			// top was already popped and its next link poisoned; the
			// CAS below would fail anyway, so retry immediately.
			t.Release(top.Handle())
			continue
		}
		if t.CASLink(st.top, top, next) {
			v = st.ar.Val(top.Handle(), 0)
			// Break the reference chain from the removed node to its
			// successor (see arena.PoisonPtr).
			t.CASLink(st.next(top.Handle()), next, arena.PoisonPtr)
			t.Release(next.Handle())
			t.Retire(top.Handle())
			t.Release(top.Handle())
			return v, true
		}
		t.Release(next.Handle())
		t.Release(top.Handle())
	}
}

// Peek returns the top value without removing it.
func (st *Stack) Peek(t mm.Thread) (v uint64, ok bool) {
	t.BeginOp()
	defer t.EndOp()
	top := t.DeRef(st.top)
	if top.IsNil() {
		return 0, false
	}
	v = st.ar.Val(top.Handle(), 0)
	t.Release(top.Handle())
	return v, true
}

// Len walks the stack and returns its length.  Quiescence only: the walk
// takes no references and is meant for tests and teardown.
func (st *Stack) Len() int {
	n := 0
	for p := st.ar.LoadLink(st.top); !p.IsNil(); p = st.ar.LoadLink(st.next(p.Handle())) {
		n++
		if n > st.ar.Nodes() {
			return -1 // corrupted: cycle
		}
	}
	return n
}

// Drain pops until empty and returns the values; for teardown in tests.
func (st *Stack) Drain(t mm.Thread) []uint64 {
	var out []uint64
	for {
		v, ok := st.Pop(t)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
