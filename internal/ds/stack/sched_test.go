package stack_test

import (
	"fmt"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/stack"
	"wfrc/internal/sched"
)

// runStackScheduled drives a 2-pusher / 1-popper Treiber stack over the
// wait-free scheme under the deterministic scheduler with one PCT seed:
// every popped value must be a pushed value seen exactly once, the
// final drain must account for the rest, and the audit must be clean.
func runStackScheduled(t *testing.T, seed int64) string {
	t.Helper()
	w := sched.NewWorld(sched.Config{Strategy: &sched.PCT{Seed: seed, Depth: 3}})
	ar := arena.MustNew(arena.Config{Nodes: 16, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 4})
	s := core.MustNew(ar, core.Config{Threads: 3})
	reg := func() *core.Thread {
		th, err := s.RegisterCore()
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	tA, tB, tC := reg(), reg(), reg()
	st, err := stack.New(s)
	if err != nil {
		t.Fatal(err)
	}

	const perPusher = 3
	pushed, popped := 0, 0
	seen := map[uint64]int{}
	pusher := func(name string, th *core.Thread, base uint64) {
		w.Spawn(name, func(vt *sched.T) {
			vt.Instrument(th)
			for i := uint64(1); i <= perPusher; i++ {
				// Claim the value before Push: the pop can linearize
				// against a push whose goroutine has not yet resumed,
				// so recording after Push would race the popper's
				// multiset check.  pushed stays post-push — it is the
				// popper's progress signal and must not run ahead of
				// the linearization.
				seen[base+i]++
				if err := st.Push(th, base+i); err != nil {
					panic(err)
				}
				pushed++
			}
		})
	}
	pusher("push-a", tA, 0)
	pusher("push-b", tB, 100)

	const pops = 4
	w.Spawn("popper", func(vt *sched.T) {
		vt.Instrument(tC)
		for popped < pops {
			vt.BlockUntil(func() bool { return pushed > popped })
			v, ok := st.Pop(tC)
			if !ok {
				continue
			}
			if seen[v] != 1 {
				panic(fmt.Sprintf("popped %d with push count %d (duplicate or phantom)", v, seen[v]))
			}
			seen[v]--
			popped++
		}
	})

	w.AtEnd(func() error {
		for _, th := range []*core.Thread{tA, tB, tC} {
			th.SetHook(nil)
		}
		rest := st.Drain(tC)
		if len(rest) != 2*perPusher-pops {
			return fmt.Errorf("drained %d values, want %d", len(rest), 2*perPusher-pops)
		}
		for _, v := range rest {
			if seen[v] != 1 {
				return fmt.Errorf("drained %d with push count %d (duplicate or phantom)", v, seen[v])
			}
			seen[v]--
		}
		for _, th := range []*core.Thread{tA, tB, tC} {
			th.Unregister()
		}
		return sched.SortedErrors(s.Audit(nil))
	})

	if err := w.Run(); err != nil {
		t.Fatalf("seed %d: %v\n  trace: %s", seed, err, w.Trace().Encode())
	}
	return w.Trace().Encode()
}

// TestStackScheduled explores the stack under a spread of PCT seeds and
// pins determinism for one of them.
func TestStackScheduled(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		runStackScheduled(t, seed)
	}
	if a, b := runStackScheduled(t, 3), runStackScheduled(t, 3); a != b {
		t.Fatalf("seed 3 is not deterministic:\n  %s\n  %s", a, b)
	}
}
