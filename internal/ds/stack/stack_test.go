package stack

import (
	"sync"
	"testing"

	"wfrc/internal/arena"
	"wfrc/internal/mm"
	"wfrc/internal/schemes"
)

func arenaCfg(nodes int) arena.Config {
	return arena.Config{Nodes: nodes, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 4}
}

func forEachScheme(t *testing.T, nodes, threads int, fn func(t *testing.T, s mm.Scheme)) {
	for _, f := range schemes.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, err := f.New(arenaCfg(nodes), schemes.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s)
			for _, err := range schemes.AuditRC(s, nil) {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

func TestLIFOSequential(t *testing.T) {
	forEachScheme(t, 64, 1, func(t *testing.T, s mm.Scheme) {
		th, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		defer th.Unregister()
		st := MustNew(s)

		if _, ok := st.Pop(th); ok {
			t.Fatal("pop from empty stack succeeded")
		}
		for i := uint64(1); i <= 10; i++ {
			if err := st.Push(th, i); err != nil {
				t.Fatal(err)
			}
		}
		if got := st.Len(); got != 10 {
			t.Fatalf("Len = %d, want 10", got)
		}
		if v, ok := st.Peek(th); !ok || v != 10 {
			t.Fatalf("Peek = %d,%v, want 10,true", v, ok)
		}
		for want := uint64(10); want >= 1; want-- {
			v, ok := st.Pop(th)
			if !ok || v != want {
				t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
			}
		}
		if _, ok := st.Pop(th); ok {
			t.Fatal("pop after drain succeeded")
		}
	})
}

func TestPushPopInterleaved(t *testing.T) {
	forEachScheme(t, 16, 1, func(t *testing.T, s mm.Scheme) {
		th, _ := s.Register()
		defer th.Unregister()
		st := MustNew(s)
		for round := 0; round < 200; round++ {
			for i := uint64(0); i < 5; i++ {
				if err := st.Push(th, i); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			for i := 4; i >= 0; i-- {
				v, ok := st.Pop(th)
				if !ok || v != uint64(i) {
					t.Fatalf("round %d: pop = %d,%v want %d", round, v, ok, i)
				}
			}
		}
	})
}

// TestConcurrentConservation checks that under concurrent push/pop every
// pushed value is popped exactly once (counting the final drain).
func TestConcurrentConservation(t *testing.T) {
	const threads = 8
	perThread := 5000
	if testing.Short() {
		perThread = 500
	}
	forEachScheme(t, 1024, threads+1, func(t *testing.T, s mm.Scheme) {
		st := MustNew(s)
		var mu sync.Mutex
		popped := make(map[uint64]int)

		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th, err := s.Register()
				if err != nil {
					t.Error(err)
					return
				}
				defer th.Unregister()
				local := make(map[uint64]int)
				for k := 0; k < perThread; k++ {
					v := uint64(id)<<32 | uint64(k)
					if err := st.Push(th, v); err != nil {
						t.Errorf("thread %d: %v", id, err)
						return
					}
					// Pop one value back with retries: a failed pop
					// permanently grows the stack (reflected random walk),
					// which would outgrow the arena over enough iterations.
					for r := 0; r < 100; r++ {
						if v, ok := st.Pop(th); ok {
							local[v]++
							break
						}
					}
				}
				mu.Lock()
				for v, c := range local {
					popped[v] += c
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()

		th, _ := s.Register()
		for _, v := range st.Drain(th) {
			popped[v]++
		}
		th.Unregister()

		want := threads * perThread
		if len(popped) != want {
			t.Fatalf("distinct values popped = %d, want %d", len(popped), want)
		}
		for v, c := range popped {
			if c != 1 {
				t.Fatalf("value %#x popped %d times", v, c)
			}
		}
		if st.Len() != 0 {
			t.Fatalf("stack not empty after drain: %d", st.Len())
		}
	})
}

func TestArenaConfigValidation(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, err := f.New(arena.Config{Nodes: 4}, schemes.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s); err == nil {
		t.Fatal("New accepted an arena without links/values")
	}
}

func TestPushExhaustion(t *testing.T) {
	f, _ := schemes.ByName("waitfree")
	s, _ := f.New(arenaCfg(2), schemes.Options{Threads: 1})
	th, _ := s.Register()
	defer th.Unregister()
	st := MustNew(s)
	if err := st.Push(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(th, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(th, 3); err == nil {
		t.Fatal("push on exhausted arena succeeded")
	}
	st.Drain(th)
	if err := st.Push(th, 4); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}
