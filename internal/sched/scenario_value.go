package sched

import (
	"fmt"

	"wfrc/internal/alloc"
	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/ds/list"
	"wfrc/internal/value"
)

// --- value-free-vs-help -----------------------------------------------------

// buildValueFreeVsHelp races the variable-size value layer's free path
// against a reader decoding under its node guard.  A replacer churns one
// list key through block-backed payloads: every successful Replace
// retires the displaced node, and whichever thread wins the reclamation
// election (R4/F1 — possibly the reader, via helping) runs the node-free
// hook and releases the payload's alloc slot on ITS thread handle.
// Meanwhile the reader decodes the payload inside GetWith's guard; the
// guard must hold the blocks alive, so a torn or recycled payload
// (non-uniform bytes, wrong length) is a use-after-free in the hook
// ordering.  The end audit checks slot conservation against the final
// live words AND the scheme's own refcount/announcement hygiene.
func buildValueFreeVsHelp(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 12, LinksPerNode: 1, ValsPerNode: 2, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2})
	vs := value.MustNew(value.Config{
		Threads: 2,
		Classes: []value.Class{{MaxPayload: 16, InitialSlots: 8, MaxSlots: 64}},
	})
	// Same hook shape as the server store: free the ref word's blocks on
	// the winner's thread and clear the slot so a recycled node can never
	// carry a stale ref into a second free.
	s.SetNodeFreeHook(func(threadID int, h arena.Handle) {
		if vw := ar.Val(h, 1); value.IsRef(vw) {
			vs.Free(threadID, vw)
			ar.SetVal(h, 1, 0)
			w.Note("hook-frees", 1)
		}
	})
	tW, tR := mustRegister(s), mustRegister(s)
	l := list.MustNew(s)

	const key = 7
	// 12-byte payloads are over InlineMax, so every round is block-backed;
	// uniform bytes make a recycled slot show up as a torn read.
	fill := func(b byte) []byte {
		p := make([]byte, 12)
		for i := range p {
			p[i] = b
		}
		return p
	}
	w0, err := vs.Alloc(0, fill(0xA0))
	if err != nil {
		panic(err)
	}
	if _, err := l.Replace(tW, key, w0); err != nil {
		panic(err)
	}

	w.Spawn("replacer", func(t *T) {
		t.Instrument(tW)
		vs.SetHook(0, func(alloc.Point) { t.Yield() })
		for r := 1; r <= 3; r++ {
			vw, err := vs.Alloc(0, fill(0xA0+byte(r)))
			if err != nil {
				panic(fmt.Sprintf("value-free-vs-help: alloc round %d: %v", r, err))
			}
			existed, err := l.Replace(tW, key, vw)
			if err != nil {
				panic(fmt.Sprintf("value-free-vs-help: replace round %d: %v", r, err))
			}
			if !existed {
				panic("value-free-vs-help: key vanished (no deleter exists)")
			}
			w.Note("replaces", 1)
		}
	})
	w.Spawn("reader", func(t *T) {
		t.Instrument(tR)
		vs.SetHook(1, func(alloc.Point) { t.Yield() })
		for i := 0; i < 3; i++ {
			ok := l.GetWith(tR, key, func(vw uint64) {
				if !value.IsRef(vw) {
					panic(fmt.Sprintf("value-free-vs-help: read non-ref word %#x", vw))
				}
				buf := vs.AppendPayload(nil, vw)
				if len(buf) != 12 {
					panic(fmt.Sprintf("value-free-vs-help: payload length %d, want 12 (header clobbered under guard)", len(buf)))
				}
				for _, b := range buf {
					if b != buf[0] {
						panic(fmt.Sprintf("value-free-vs-help: torn payload % x (blocks recycled under guard)", buf))
					}
				}
				if buf[0] < 0xA0 || buf[0] > 0xA3 {
					panic(fmt.Sprintf("value-free-vs-help: payload byte %#x is no round's fill", buf[0]))
				}
			})
			if !ok {
				// Legal: Replace is delete-then-insert, so a reader can
				// land in the window where the key is briefly absent.
				w.Note("read-misses", 1)
			}
			w.Note("reads", 1)
		}
	})

	w.AtEnd(func() error {
		for _, ct := range []*core.Thread{tW, tR} {
			ct.SetHook(nil)
		}
		vs.SetHook(0, nil)
		vs.SetHook(1, nil)
		// Unregister drains announcement state, so the last retired nodes
		// reach the hook before the conservation audits below.
		for _, ct := range []*core.Thread{tW, tR} {
			ct.Unregister()
		}
		noteCoreStats(w, tW, tR)
		if w.notes["replaces"] != 3 || w.notes["reads"] != 3 {
			return fmt.Errorf("incomplete run: %d replaces, %d reads (want 3 each)",
				w.notes["replaces"], w.notes["reads"])
		}
		// Exactly one node is displaced per Replace and each carried a
		// block ref; the final node's word stays live.
		if w.notes["hook-frees"] != 3 {
			return fmt.Errorf("node-free hook released %d value words, want 3 (one per displaced node)",
				w.notes["hook-frees"])
		}
		live := map[uint64]bool{}
		l.Range(func(_, vw uint64) {
			if value.IsRef(vw) {
				live[vw] = true
			}
		})
		errs := append(vs.Audit(live), s.Audit(nil)...)
		return SortedErrors(errs)
	})
}

func init() {
	Register(Scenario{
		Name:  "value-free-vs-help",
		About: "block-backed values: Replace retires nodes whose free hook releases alloc slots while a reader decodes under guard",
		Build: buildValueFreeVsHelp,
	})
}
