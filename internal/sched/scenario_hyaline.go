package sched

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/baseline/hyaline"
)

// --- hyaline-retire-vs-help --------------------------------------------------

// buildHyalineRetireVsHelp races a Hyaline batch dispatch against a
// reader whose leave traversal finishes the reclamation for the retirer
// (Hyaline's analogue of helping: the retirer hands the batch to every
// active slot and whoever drops the last reference frees it).  The
// reader enters its operation and holds the slot reference while the
// retirer swaps the shared link and retires the unlinked nodes past the
// dispatch threshold, so the retire scan must observe the reader's slot
// as active, insert a batch node into its retirement list, and leave
// the batch alive until the reader's EndOp traversal drops the final
// reference.  Every hook point of both threads is a scheduling point,
// so PCT can suspend the retirer between the slot snapshot, the
// insertion CAS, and the reference adjustment — the windows where the
// reader's concurrent leave CAS historically bites.  The end audit
// (leak/conservation) runs on every schedule.
func buildHyalineRetireVsHelp(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 24, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 2})
	s := hyaline.MustNew(ar, hyaline.Config{Threads: 3, RetireThreshold: 3})
	root := ar.NewRoot()

	tR, err := s.RegisterHyaline()
	if err != nil {
		panic(err)
	}
	tW, err := s.RegisterHyaline()
	if err != nil {
		panic(err)
	}

	// Setup: one node linked from root, born in era 0 — at or below any
	// access era the reader can publish, so the era-skip rule must treat
	// the reader as a target once this node is retired.
	h0, err := tW.Alloc()
	if err != nil {
		panic(err)
	}
	tW.StoreLink(root, arena.MakePtr(h0, false))

	readerIn := false
	dispatched := false

	w.Spawn("reader", func(t *T) {
		tR.SetHook(func(hyaline.Point) { t.Yield() })
		tR.BeginOp()
		if p := tR.DeRef(root); p.Handle() == arena.Nil {
			panic("hyaline-retire-vs-help: reader saw an empty root")
		}
		w.Note("reads", 1)
		readerIn = true
		// Stay inside the operation until a batch has been dispatched at
		// this slot's expense, so the leave traversal below has a
		// retirement list to drain on every schedule.
		t.BlockUntil(func() bool { return dispatched })
		// Re-read across the era tick: DeRef's validation loop must
		// converge even while dispatches advance the clock.
		if p := tR.DeRef(root); p.Handle() == arena.Nil {
			panic("hyaline-retire-vs-help: reader saw an empty root after dispatch")
		}
		w.Note("reads", 1)
		tR.EndOp()
	})

	w.Spawn("retirer", func(t *T) {
		tW.SetHook(func(hyaline.Point) { t.Yield() })
		t.BlockUntil(func() bool { return readerIn })
		for k := 0; k < 6; k++ {
			h, err := tW.Alloc()
			if err != nil {
				panic(fmt.Sprintf("hyaline-retire-vs-help: alloc %d: %v", k, err))
			}
			old := tW.Load(root)
			if !tW.CASLink(root, old, arena.MakePtr(h, false)) {
				panic("hyaline-retire-vs-help: swap CAS failed with one writer")
			}
			tW.Retire(old.Handle())
			w.Note("retires", 1)
			if tW.Stats().Scans > 0 {
				dispatched = true
			}
		}
		// Threshold 3 with one active reader guarantees a dispatch above,
		// but never leave the reader parked if a schedule dodges it.
		dispatched = true
	})

	w.AtEnd(func() error {
		tR.SetHook(nil)
		tW.SetHook(nil)
		w.Note("dispatches", int64(tW.Stats().Scans))
		w.Note("reader-frees", int64(tR.Stats().Frees))
		w.Note("retirer-frees", int64(tW.Stats().Frees))
		w.Note("cas-failures", int64(tR.Stats().CASFailures+tW.Stats().CASFailures))
		tR.Unregister()
		tW.Unregister()
		// Quiesce: a fresh thread adopts whatever Unregister parked in
		// limbo and dispatches it against an empty slot set (two passes,
		// matching schemes.Flush).
		at, err := s.RegisterHyaline()
		if err != nil {
			return err
		}
		at.Flush()
		at.Flush()
		at.Unregister()
		if w.notes["retires"] != 6 {
			return fmt.Errorf("retired %d of 6 nodes", w.notes["retires"])
		}
		if w.notes["dispatches"] < 1 {
			return fmt.Errorf("no batch dispatched while the reader held its slot reference")
		}
		if n := s.UnreclaimedNodes(); n != 0 {
			return fmt.Errorf("%d retired node(s) unreclaimed after quiescent flush", n)
		}
		return SortedErrors(s.Audit(nil))
	})
}

func init() {
	Register(Scenario{
		Name:  "hyaline-retire-vs-help",
		About: "hyaline: batch dispatch races the reader whose leave traversal frees the batch",
		Build: buildHyalineRetireVsHelp,
	})
}
