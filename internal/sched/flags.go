package sched

import "flag"

// Replay flags, registered on the default flag set so every test binary
// that links this package accepts them.  A counterexample's Hint()
// prints the exact invocation:
//
//	go test ./internal/sched -run 'TestSchedReplay$' \
//	    -sched.scenario=deref-vs-swap -sched.seed=42
//
// -sched.seed replays the PCT schedule derived from the seed;
// -sched.trace replays an explicit recorded schedule (the Trace.Encode
// "t1:..." format) and takes precedence when both are set.
var (
	// FlagScenario selects the scenario for TestSchedReplay.
	FlagScenario = flag.String("sched.scenario", "", "sched scenario to replay (see sched.Names)")
	// FlagSeed is the PCT seed to replay (-1 = unset).
	FlagSeed = flag.Int64("sched.seed", -1, "PCT seed to replay for -sched.scenario")
	// FlagTrace is an explicit schedule to replay, in Trace.Encode form.
	FlagTrace = flag.String("sched.trace", "", "explicit schedule trace (t1:...) to replay for -sched.scenario")
)
