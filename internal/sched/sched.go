// Package sched is a cooperative deterministic scheduler for the
// wait-free memory management core: scenario code runs as virtual
// threads that yield at every algorithm hook point (core.PD1, core.PH4,
// ...), and a Strategy decides which single virtual thread runs at each
// step.  Exactly one virtual thread executes at a time, so a run is a
// pure function of the scenario and the schedule, and every run emits a
// Trace that replays byte-for-byte.
//
// Two exploration strategies are provided: PCT (random priorities with
// d change points, Burckhardt et al.'s probabilistic concurrency
// testing) for probabilistic bug-depth guarantees on real-size
// scenarios, and bounded exhaustive DFS for small ones.  Explored
// schedules are checked three ways: scenario assertions during the run,
// the scheme's quiescent audits (leaks, double frees, announcement-row
// hygiene) at the end, and optionally a lincheck linearizability check
// of the recorded operation history.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"wfrc/internal/core"
	"wfrc/internal/lincheck"
)

// DefaultMaxSteps bounds a run's scheduling steps when Config.MaxSteps
// is zero.  Hitting the bound is reported as a failure: under a fair
// strategy it means a livelock, i.e. a wait-freedom violation.
const DefaultMaxSteps = 50000

// Config parameterizes one deterministic run.
type Config struct {
	// Strategy picks the next virtual thread at each step (required).
	Strategy Strategy
	// MaxSteps bounds the scheduling steps (default DefaultMaxSteps).
	MaxSteps int
}

// World owns the virtual threads of one run.  Build it, Spawn the
// threads, register checks, then Run exactly once.  A World is not
// reusable; exploration constructs a fresh World per schedule.
type World struct {
	cfg      Config
	threads  []*T
	ack      chan struct{}
	trace    Trace
	clock    int64
	history  []lincheck.Op
	models   []lincheck.Model
	notes    map[string]int64
	endFns   []func() error
	stepFns  []func() error
	current  *T
	failure  string
	started  bool
	aborting bool
}

// NewWorld creates an empty world.
func NewWorld(cfg Config) *World {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	return &World{
		cfg:   cfg,
		ack:   make(chan struct{}),
		notes: map[string]int64{},
	}
}

type tState int

const (
	tReady tState = iota
	tRunning
	tBlocked
	tDone
)

// abortSignal unwinds a virtual thread when the world shuts down early;
// the spawn wrapper recovers it.
type abortSignal struct{}

// T is one virtual thread.  Its body runs on a dedicated goroutine but
// only while the scheduler has handed it the baton, so bodies need no
// synchronization of their own: every instrumented yield point is a
// potential context switch and nothing else is.
type T struct {
	w         *World
	id        int
	name      string
	resume    chan struct{}
	state     tState
	cond      func() bool // runnable condition while state == tBlocked
	body      func(*T)
	err       error
	lastPoint core.Point
	hasPoint  bool
}

// ID returns the virtual thread's scheduler id (its Spawn order, also
// the id recorded in traces).
func (t *T) ID() int { return t.id }

// Name returns the thread's scenario-chosen name.
func (t *T) Name() string { return t.name }

// Spawn adds a virtual thread before Run.  Thread ids are assigned in
// spawn order, starting at 0; traces record these ids.
func (w *World) Spawn(name string, body func(*T)) *T {
	if w.started {
		panic("sched: Spawn after Run")
	}
	t := &T{
		w:      w,
		id:     len(w.threads),
		name:   name,
		resume: make(chan struct{}),
		body:   body,
	}
	w.threads = append(w.threads, t)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					t.err = fmt.Errorf("%v", r)
				}
			}
			t.state = tDone
			w.ack <- struct{}{}
		}()
		<-t.resume
		if w.aborting {
			panic(abortSignal{})
		}
		t.body(t)
	}()
	return t
}

// AtEnd registers a check run after every thread finishes (quiescent
// audits belong here).  Failures abort with the check's error text.
func (w *World) AtEnd(fn func() error) { w.endFns = append(w.endFns, fn) }

// EachStep registers an invariant checked after every scheduling step,
// i.e. at every instrumented interleaving point.  Keep these cheap.
func (w *World) EachStep(fn func() error) { w.stepFns = append(w.stepFns, fn) }

// Lincheck registers a sequential model; after the run, the history
// recorded via T.Record is checked for linearizability against it.
func (w *World) Lincheck(m lincheck.Model) { w.models = append(w.models, m) }

// Note adds delta to a named counter; explorers report the counters so
// tests can assert a schedule actually exercised helping, OOM, etc.
func (w *World) Note(key string, delta int64) { w.notes[key] = w.notes[key] + delta }

// Notes returns the counters accumulated via Note.
func (w *World) Notes() map[string]int64 { return w.notes }

// Steps returns the number of scheduling steps taken so far.
func (w *World) Steps() int { return len(w.trace) }

// Trace returns the schedule taken so far (thread id per step).
func (w *World) Trace() Trace { return append(Trace(nil), w.trace...) }

// Failure returns the first failure, or "" if the run passed.
func (w *World) Failure() string { return w.failure }

// History returns the operation history recorded via T.Record.
func (w *World) History() []lincheck.Op { return append([]lincheck.Op(nil), w.history...) }

func (w *World) fail(format string, args ...any) {
	if w.failure == "" {
		w.failure = fmt.Sprintf(format, args...)
	}
}

// Run executes the scenario under the configured strategy until every
// thread finishes, a check fails, or a budget trips.  It returns an
// error describing the first failure, or nil.  Run may be called once.
func (w *World) Run() error {
	if w.started {
		panic("sched: Run called twice")
	}
	if w.cfg.Strategy == nil {
		panic("sched: Config.Strategy is required")
	}
	w.started = true
	runnable := make([]*T, 0, len(w.threads))
	for w.failure == "" {
		runnable = runnable[:0]
		done := 0
		for _, t := range w.threads {
			if t.state == tBlocked && t.cond() {
				t.state = tReady
				t.cond = nil
			}
			switch t.state {
			case tReady:
				runnable = append(runnable, t)
			case tDone:
				done++
			}
		}
		if len(runnable) == 0 {
			if done != len(w.threads) {
				w.fail("deadlock: %s", w.describeStuck())
			}
			break
		}
		if len(w.trace) >= w.cfg.MaxSteps {
			w.fail("step budget %d exceeded with %d thread(s) unfinished (livelock / wait-freedom violation?)",
				w.cfg.MaxSteps, len(w.threads)-done)
			break
		}
		t, err := w.cfg.Strategy.Pick(w, runnable)
		if err != nil {
			w.fail("strategy: %v", err)
			break
		}
		w.trace = append(w.trace, t.id)
		w.step(t)
		if t.err != nil {
			w.fail("thread %d (%s) panicked: %v", t.id, t.name, t.err)
			break
		}
		for _, fn := range w.stepFns {
			if err := fn(); err != nil {
				w.fail("step %d (after thread %d): %v", len(w.trace)-1, t.id, err)
				break
			}
		}
	}
	w.shutdown()
	if w.failure == "" {
		for _, fn := range w.endFns {
			if err := fn(); err != nil {
				w.fail("end check: %v", err)
				break
			}
		}
	}
	if w.failure == "" {
		for _, m := range w.models {
			if ok, expl := lincheck.Check(m, w.history); !ok {
				w.fail("history not linearizable: %s", expl)
				break
			}
		}
	}
	if w.failure != "" {
		return fmt.Errorf("%s", w.failure)
	}
	return nil
}

// step hands the baton to t and waits for it to yield, block or finish.
func (w *World) step(t *T) {
	t.state = tRunning
	w.current = t
	t.resume <- struct{}{}
	<-w.ack
	w.current = nil
}

// shutdown unwinds every unfinished thread via the abort sentinel so
// their goroutines exit before Run returns.
func (w *World) shutdown() {
	w.aborting = true
	for _, t := range w.threads {
		if t.state != tDone {
			w.step(t)
		}
	}
}

func (w *World) describeStuck() string {
	var parts []string
	for _, t := range w.threads {
		if t.state == tBlocked {
			parts = append(parts, fmt.Sprintf("thread %d (%s) blocked", t.id, t.name))
		}
	}
	if len(parts) == 0 {
		return "no runnable threads"
	}
	return strings.Join(parts, "; ")
}

func (w *World) tick() int64 {
	w.clock++
	return w.clock
}

// --- virtual-thread side ----------------------------------------------------

// Yield is a scheduling point: the thread offers the baton back and
// runs again only when the strategy next picks it.
func (t *T) Yield() {
	t.state = tReady
	t.w.ack <- struct{}{}
	<-t.resume
	if t.w.aborting {
		panic(abortSignal{})
	}
}

// YieldPoint is Yield at a named core hook point (recorded as the
// thread's last position, for deadlock and failure reports).
func (t *T) YieldPoint(p core.Point) {
	t.lastPoint = p
	t.hasPoint = true
	t.Yield()
}

// BlockUntil parks the thread until cond reports true.  The scheduler
// re-evaluates cond before every step (execution is serialized, so cond
// may read shared scenario state without synchronization).
func (t *T) BlockUntil(cond func() bool) {
	if cond() {
		t.Yield()
		return
	}
	t.cond = cond
	t.state = tBlocked
	t.w.ack <- struct{}{}
	<-t.resume
	if t.w.aborting {
		panic(abortSignal{})
	}
}

// BlockOn parks the thread until ch is ready (closed or holding a
// value; a pending value is consumed by the readiness probe).
func (t *T) BlockOn(ch <-chan struct{}) {
	t.BlockUntil(func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	})
}

// Record wraps one logical operation for the linearizability history:
// it draws the Begin timestamp, runs body (which may yield), draws the
// End timestamp and appends the completed lincheck.Op.
func (t *T) Record(name string, arg uint64, body func() uint64) uint64 {
	begin := t.w.tick()
	ret := body()
	end := t.w.tick()
	t.w.history = append(t.w.history, lincheck.Op{
		Thread: t.id, Name: name, Arg: arg, Ret: ret, Begin: begin, End: end,
	})
	return ret
}

// RecordIf is Record for operations that may not belong in the
// history: body additionally reports whether to keep the op.  A
// bounded-retry allocation that returns out-of-memory has no
// counterpart in the sequential allocator spec (the nodes it failed to
// find may be in flight at suspended threads), so such attempts are
// audited separately instead of recorded.
func (t *T) RecordIf(name string, arg uint64, body func() (uint64, bool)) (uint64, bool) {
	begin := t.w.tick()
	ret, keep := body()
	end := t.w.tick()
	if keep {
		t.w.history = append(t.w.history, lincheck.Op{
			Thread: t.id, Name: name, Arg: arg, Ret: ret, Begin: begin, End: end,
		})
	}
	return ret, keep
}

// HookSetter is the instrumentation surface of the wait-free core's
// threads (and of chaos wrappers that forward to one).
type HookSetter interface {
	SetHook(func(core.Point))
}

// Instrument routes every core hook point of ct through t.YieldPoint,
// making each algorithm step boundary a scheduling point.
func (t *T) Instrument(ct HookSetter) {
	ct.SetHook(t.YieldPoint)
}

// InstrumentPoints is Instrument restricted to the listed points; DFS
// scenarios use sparse instrumentation to bound the branching factor.
func (t *T) InstrumentPoints(ct HookSetter, pts ...core.Point) {
	var mask [core.NumPoints]bool
	for _, p := range pts {
		mask[p] = true
	}
	ct.SetHook(func(p core.Point) {
		if mask[p] {
			t.YieldPoint(p)
		}
	})
}

// --- chaos integration ------------------------------------------------------

// Parker returns a park function for chaos.Config.Park: a chaos stall
// becomes a scheduler block of the current virtual thread, released
// when the chaos scheme's release channel is closed.  Outside a
// scheduled step (no current thread) it degrades to a real block.
func (w *World) Parker() func(release <-chan struct{}) {
	return func(release <-chan struct{}) {
		if t := w.current; t != nil {
			t.BlockOn(release)
			return
		}
		<-release
	}
}

// GoschedFn returns a yield function for chaos.Config.Gosched: a
// perturbation storm becomes scheduling points instead of
// runtime.Gosched calls (which are no-ops under a cooperative world).
func (w *World) GoschedFn() func() {
	return func() {
		if t := w.current; t != nil {
			t.Yield()
		}
	}
}

// SortedErrors canonicalizes a quiescent-audit error list into one
// deterministic message, so a failing schedule's report is identical on
// replay regardless of map-iteration order inside the audits.
func SortedErrors(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	sort.Strings(msgs)
	return fmt.Errorf("%s", strings.Join(msgs, "; "))
}
