package sched

import (
	"fmt"
	"math/rand"
)

// Strategy picks the next virtual thread to run.  runnable is never
// empty and is ordered by thread id; Pick is called once per scheduling
// step.  A strategy must be deterministic given its own configuration
// (seed, trace, prefix) — the replay contract depends on it.
type Strategy interface {
	Pick(w *World, runnable []*T) (*T, error)
}

// --- PCT --------------------------------------------------------------------

// PCT is probabilistic concurrency testing (Burckhardt et al., ASPLOS
// 2010): each thread gets a distinct random priority above Depth, the
// highest-priority runnable thread always runs, and at Depth randomly
// chosen steps the running thread's priority drops below every initial
// priority.  A schedule of length k then exposes any bug of depth
// Depth+1 with probability at least 1/(n·k^Depth) — the reason a small
// fixed budget of seeds suffices in CI.
type PCT struct {
	// Seed determines the priorities and change points; runs with equal
	// seeds over the same scenario produce identical schedules.
	Seed int64
	// Depth is the number of priority change points (d).
	Depth int
	// Horizon is the schedule-length estimate change points are drawn
	// from (default 64).  It must be commensurate with the real schedule
	// length: change points drawn beyond the last step never fire, and a
	// PCT schedule with no live change points degenerates to a fixed
	// strict-priority order that varies only with the initial
	// permutation.  The scenarios here run tens of steps, hence the
	// small default.
	Horizon int

	rng    *rand.Rand
	prio   []int       // by thread id; larger runs first
	change map[int]int // step -> priority to drop the running thread to
	step   int
}

func (p *PCT) init(n int) {
	if p.Horizon <= 0 {
		p.Horizon = 64
	}
	p.rng = rand.New(rand.NewSource(p.Seed))
	// Distinct initial priorities Depth+1 .. Depth+n, randomly permuted.
	p.prio = make([]int, n)
	for i, v := range p.rng.Perm(n) {
		p.prio[i] = p.Depth + 1 + v
	}
	// Depth change points at distinct random steps; the i-th drops the
	// running thread to priority i+1 (all below the initial range, and
	// distinct from each other so the order among demoted threads is
	// still well defined).
	p.change = make(map[int]int, p.Depth)
	for i := 0; i < p.Depth; i++ {
		for {
			s := 1 + p.rng.Intn(p.Horizon)
			if _, dup := p.change[s]; !dup {
				p.change[s] = i + 1
				break
			}
		}
	}
}

// Pick implements Strategy.
func (p *PCT) Pick(w *World, runnable []*T) (*T, error) {
	if p.rng == nil {
		p.init(len(w.threads))
	}
	p.step++
	best := p.best(runnable)
	if drop, ok := p.change[p.step]; ok {
		delete(p.change, p.step)
		p.prio[best.id] = drop
		best = p.best(runnable)
	}
	return best, nil
}

func (p *PCT) best(runnable []*T) *T {
	best := runnable[0]
	for _, t := range runnable[1:] {
		if p.prio[t.id] > p.prio[best.id] {
			best = t
		}
	}
	return best
}

// --- uniform random ---------------------------------------------------------

// Random picks uniformly among the runnable threads; a baseline
// explorer and a quick smoke strategy.
type Random struct {
	// Seed determines the schedule.
	Seed int64

	rng *rand.Rand
}

// Pick implements Strategy.
func (r *Random) Pick(w *World, runnable []*T) (*T, error) {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	return runnable[r.rng.Intn(len(runnable))], nil
}

// --- trace replay -----------------------------------------------------------

// replay re-executes a recorded schedule step for step.
type replay struct {
	trace Trace
	pos   int
}

// ReplayStrategy returns a strategy that follows tr exactly; it errors
// if the scenario diverges from the recorded schedule (different thread
// set, or the recorded thread not runnable), which indicates the
// scenario itself is nondeterministic.
func ReplayStrategy(tr Trace) Strategy { return &replay{trace: tr} }

// Pick implements Strategy.
func (r *replay) Pick(w *World, runnable []*T) (*T, error) {
	if r.pos >= len(r.trace) {
		return nil, fmt.Errorf("replay diverged: trace exhausted after %d steps but threads still runnable", r.pos)
	}
	id := r.trace[r.pos]
	for _, t := range runnable {
		if t.id == id {
			r.pos++
			return t, nil
		}
	}
	return nil, fmt.Errorf("replay diverged at step %d: recorded thread %d is not runnable", r.pos, id)
}

// --- bounded exhaustive DFS -------------------------------------------------

// dfsChoice records one branch taken: the index chosen within the
// runnable set and how many alternatives existed.
type dfsChoice struct {
	idx, width int
}

// dfs drives one run of an exhaustive depth-first enumeration: it
// follows prefix (indices into each step's runnable set), then always
// takes index 0, recording every branch for the backtracker.
type dfs struct {
	prefix  []int
	choices []dfsChoice
}

// Pick implements Strategy.
func (d *dfs) Pick(w *World, runnable []*T) (*T, error) {
	step := len(d.choices)
	idx := 0
	if step < len(d.prefix) {
		idx = d.prefix[step]
		if idx >= len(runnable) {
			return nil, fmt.Errorf("dfs prefix diverged at step %d: index %d of %d runnable (nondeterministic scenario?)",
				step, idx, len(runnable))
		}
	}
	d.choices = append(d.choices, dfsChoice{idx: idx, width: len(runnable)})
	return runnable[idx], nil
}

// nextPrefix computes the successor prefix in depth-first order: the
// deepest branch with an untaken alternative advances and everything
// below it resets.  It returns nil when the run just recorded was the
// last schedule.
func nextPrefix(choices []dfsChoice) []int {
	for i := len(choices) - 1; i >= 0; i-- {
		if choices[i].idx+1 < choices[i].width {
			prefix := make([]int, i+1)
			for j := 0; j < i; j++ {
				prefix[j] = choices[j].idx
			}
			prefix[i] = choices[i].idx + 1
			return prefix
		}
	}
	return nil
}
