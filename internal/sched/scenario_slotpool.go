package sched

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/core"
	"wfrc/internal/slotpool"
)

// --- slot-lease-churn -------------------------------------------------------

// buildSlotLeaseChurn drives the slotpool lease lifecycle under the
// deterministic scheduler: two connection threads contend for a single
// leasable slot (so every cycle is a cross-lessee reuse of the same
// announcement row) while a directly-registered writer CASes the root
// link, generating HelpDeRef traffic against whichever lessee currently
// owns the slot.  The per-release reuse audit runs inside Release; a
// helper pin held across the release point (the writer suspended mid
// H4..H8 on the lessee's row) forces the quarantine path, and the slot
// only re-enters circulation once a later TryLease re-audits it clean.
// Every schedule ends with the scheme's full quiescent audit, including
// AuditAnnRows, after the pool has unregistered its slot threads.
func buildSlotLeaseChurn(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 8, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2})
	pool := slotpool.MustNew(slotpool.Config{
		Slots:        1,
		AuditRetries: 1, // a pinned helper is a suspended vthread; waiting it out is futile
		Hook: func(pt slotpool.Point) {
			switch pt {
			case slotpool.PLeaseGranted:
				w.Note("leases", 1)
			case slotpool.PRecycled:
				w.Note("recycles", 1)
			case slotpool.PQuarantined:
				w.Note("quarantines", 1)
			}
		},
	}, s)
	tW := mustRegister(s)
	root := ar.NewRoot()
	h0 := mustAlloc(tW)
	tW.StoreLink(root, arena.MakePtr(h0, false))
	tW.ReleaseRef(h0)

	conn := func(name string) {
		w.Spawn(name, func(t *T) {
			for cycle := 0; cycle < 2; cycle++ {
				// The scheduler re-evaluates BlockUntil conditions before
				// every step, so a side-effectful condition must be
				// idempotent: once TryLease succeeds, keep answering true
				// without leasing again.
				var l *slotpool.Lease
				t.BlockUntil(func() bool {
					if l != nil {
						return true
					}
					got, ok := pool.TryLease()
					if ok {
						l = got
					}
					return ok
				})
				ct := l.Thread(0).(*core.Thread)
				t.Instrument(ct)
				p := ct.DeRefLink(root)
				if h := p.Handle(); h != arena.Nil {
					ct.ReleaseRef(h)
				}
				w.Note("conn-reads", 1)
				ct.SetHook(nil)
				l.Release()
				t.Yield()
			}
		})
	}
	conn("conn-a")
	conn("conn-b")

	w.Spawn("writer", func(t *T) {
		t.Instrument(tW)
		for k := 0; k < 2; k++ {
			n := mustAlloc(tW)
			for {
				old := tW.DeRefLink(root)
				ok := tW.CASLink(root, old, arena.MakePtr(n, false))
				if h := old.Handle(); h != arena.Nil {
					tW.ReleaseRef(h)
				}
				if ok {
					w.Note("installs", 1)
					break
				}
			}
			tW.ReleaseRef(n)
		}
	})

	w.AtEnd(func() error {
		tW.SetHook(nil)
		for _, th := range pool.SlotThreads(0) {
			th.(*core.Thread).SetHook(nil)
		}
		st := pool.Stats()
		pool.Close()
		tW.Unregister()
		noteCoreStats(w, tW)
		if st.Violations != 0 {
			return fmt.Errorf("slot reuse audit flagged %d live-announcement violation(s) across lessees", st.Violations)
		}
		if st.Leased != 0 {
			return fmt.Errorf("%d lease(s) still outstanding at quiescence", st.Leased)
		}
		if got := w.notes["conn-reads"]; got != 4 {
			return fmt.Errorf("connections completed %d reads, want 4", got)
		}
		if got := w.notes["leases"]; got != 4 {
			return fmt.Errorf("pool granted %d leases, want 4 (2 conns x 2 cycles over 1 slot)", got)
		}
		return SortedErrors(s.Audit(nil))
	})
}

func init() {
	Register(Scenario{
		Name:  "slot-lease-churn",
		About: "two connections churn one slot lease while a writer's CAS helping races the reuse audit",
		Build: buildSlotLeaseChurn,
	})
}
