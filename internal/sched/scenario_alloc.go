package sched

import (
	"fmt"

	"wfrc/internal/alloc"
	"wfrc/internal/arena"
	"wfrc/internal/core"
)

// --- alloc-during-grow ------------------------------------------------------

// buildAllocDuringGrow races two allocators over a growable arena whose
// segment 0 is far too small: both threads exhaust their footnote-4
// budgets at roughly the same time and enter the growth escape hatch
// concurrently, so the pool's pop, the arena's segment-attach CAS and
// the chain splice into the free-lists (PG1 and the F7/F9 head CAS of
// spliceFresh) all interleave with the paper's normal A1–A18 traffic.
// The end audit must hold across whatever segments were attached, and
// every schedule must actually have grown (segments >= 2).
func buildAllocDuringGrow(w *World) {
	// Segment 0 holds 4 nodes; the growth granularity is the arena's
	// minimum segment of 64, so a single refill ends the scramble — the
	// interesting interleavings are the ones on the way there.
	ar := arena.MustNew(arena.Config{Nodes: 4, MaxNodes: 256, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2, AllocRetryLimit: 24})
	tA, tB := mustRegister(s), mustRegister(s)
	arrived := 0

	body := func(name string, ct *core.Thread) {
		w.Spawn(name, func(t *T) {
			t.Instrument(ct)
			// Rendezvous so both bursts hit the 4-node segment together.
			arrived++
			t.BlockUntil(func() bool { return arrived == 2 })
			var held []arena.Handle
			for k := 0; k < 5; k++ {
				h, err := ct.AllocNode()
				if err != nil {
					// MaxNodes 256 with 10 requests outstanding: any OOM
					// means the growth path failed.
					panic(fmt.Sprintf("alloc-during-grow: %s alloc %d: %v", name, k, err))
				}
				held = append(held, h)
				w.Note("allocs", 1)
			}
			for _, h := range held {
				ct.ReleaseRef(h)
			}
		})
	}
	body("grow-a", tA)
	body("grow-b", tB)

	w.AtEnd(func() error {
		for _, ct := range []*core.Thread{tA, tB} {
			ct.SetHook(nil)
		}
		stA, stB := tA.Stats(), tB.Stats()
		w.Note("grow-refills", int64(stA.GrowRefills+stB.GrowRefills))
		w.Note("segment-attaches", int64(stA.SegmentAttaches+stB.SegmentAttaches))
		for _, ct := range []*core.Thread{tA, tB} {
			ct.Unregister()
		}
		noteCoreStats(w, tA, tB)
		if w.notes["allocs"] != 10 {
			return fmt.Errorf("completed %d of 10 allocations on a growable arena", w.notes["allocs"])
		}
		if s.Segments() < 2 {
			return fmt.Errorf("10 allocations over a 4-node segment 0 attached no segment (segments=%d)", s.Segments())
		}
		if w.notes["grow-refills"] < 1 {
			return fmt.Errorf("no thread recorded a growth refill (segments=%d)", s.Segments())
		}
		return SortedErrors(s.Audit(nil))
	})
}

// --- free-into-detached-class -----------------------------------------------

// buildFreeIntoDetachedClass drives the standalone block-pool allocator
// (internal/alloc) through its sealed-block handoff race: the freer
// drains slots it obtained from the class's only initial blocks, sealing
// and pushing full blocks back to the shared pool, while the allocator
// thread — finding its cache and the pool empty — races those pushes
// against the class's segment-attach path.  Blocks are bags of slots
// (Blelloch–Wei): the slots the freer seals were carved from blocks it
// no longer owns ("detached" from their origin), and an interleaving
// where the allocator pops a half-published block, or grow's registry
// CAS overlaps a push, must never double-issue or strand a slot — the
// conservation audit at the end checks exactly that.
func buildFreeIntoDetachedClass(w *World) {
	a := alloc.MustNew(alloc.Config{
		Threads: 2,
		Classes: []alloc.ClassConfig{{SlotWords: 2, BlockSlots: 4, InitialSlots: 8, MaxSlots: 64}},
	})
	atA, atB := a.Thread(0), a.Thread(1)
	// Setup: the freer drains the whole initial segment (both blocks) so
	// the shared pool starts the race empty.
	preheld := make([]alloc.Ref, 0, 8)
	for i := 0; i < 8; i++ {
		r, err := atB.Alloc(0)
		if err != nil {
			panic(err)
		}
		preheld = append(preheld, r)
	}

	held := make([]alloc.Ref, 0, 6)
	w.Spawn("allocator", func(t *T) {
		atA.SetHook(func(alloc.Point) { t.Yield() })
		for k := 0; k < 6; k++ {
			r, err := atA.Alloc(0)
			if err != nil {
				// Legal when the freer has not sealed yet and the class is
				// at MaxSlots — but MaxSlots 64 leaves 50 slots of
				// headroom, so any error is a real bug.
				panic(fmt.Sprintf("free-into-detached-class: alloc %d: %v", k, err))
			}
			held = append(held, r)
			w.Note("allocs", 1)
		}
	})
	w.Spawn("freer", func(t *T) {
		atB.SetHook(func(alloc.Point) { t.Yield() })
		for _, r := range preheld {
			atB.Free(r)
			w.Note("frees", 1)
		}
	})

	w.AtEnd(func() error {
		atA.SetHook(nil)
		atB.SetHook(nil)
		if w.notes["allocs"] != 6 || w.notes["frees"] != 8 {
			return fmt.Errorf("scenario incomplete: notes %v", w.notes)
		}
		st := a.Stats()
		w.Note("seals", int64(st.BlocksSealed))
		w.Note("attaches", int64(st.Attaches))
		if st.BlocksSealed < 2 {
			return fmt.Errorf("freeing 8 slots with BlockSlots=4 sealed %d blocks, want >= 2", st.BlocksSealed)
		}
		live := make(map[alloc.Ref]bool, len(held))
		for _, r := range held {
			live[r] = true
		}
		if errs := a.Audit(live); len(errs) != 0 {
			return SortedErrors(errs)
		}
		// Drain and re-audit with nothing live: every slot must be free
		// exactly once.
		for _, r := range held {
			atA.Free(r)
		}
		return SortedErrors(a.Audit(nil))
	})
}

func init() {
	Register(Scenario{
		Name:  "alloc-during-grow",
		About: "growable arena: two exhausted allocators race the segment attach and chain splice",
		Build: buildAllocDuringGrow,
	})
	Register(Scenario{
		Name:  "free-into-detached-class",
		About: "block-pool allocator: sealed-block pushes race an allocator's pops and the class grow",
		Build: buildFreeIntoDetachedClass,
	})
}
