package sched

import (
	"fmt"

	"wfrc/internal/arena"
	"wfrc/internal/chaos"
	"wfrc/internal/core"
	"wfrc/internal/ds/queue"
	"wfrc/internal/lincheck"
)

// Scenario is a named, deterministic concurrency scenario over the
// wait-free core: Build wires a fresh scheme and virtual threads into
// the given world.  Build must be deterministic — no time, maps in
// iteration order, or non-strategy randomness — or replay breaks.
type Scenario struct {
	// Name identifies the scenario to the explorers, flags and CLI.
	Name string
	// About is a one-line description.
	About string
	// Build populates a fresh world (called once per schedule).
	Build func(w *World)
	// ExpectFailure, when non-empty, marks an injected-bug scenario:
	// exploration is expected to find a failure containing this
	// substring.  Clean scenarios leave it empty.
	ExpectFailure string
	// DFSOK marks the scenario small enough (sparse instrumentation,
	// short bodies) for exhaustive DFS.
	DFSOK bool
	// MaxSteps overrides the default per-run step budget.
	MaxSteps int
	// Depth is the suggested PCT change-point count (default 3).
	Depth int
}

var (
	registry = map[string]Scenario{}
	regOrder []string
)

// Register adds a scenario; duplicate names panic.
func Register(sc Scenario) {
	if _, dup := registry[sc.Name]; dup {
		panic("sched: duplicate scenario " + sc.Name)
	}
	registry[sc.Name] = sc
	regOrder = append(regOrder, sc.Name)
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// Names lists the registered scenarios in registration order.
func Names() []string { return append([]string(nil), regOrder...) }

func mustRegister(s *core.Scheme) *core.Thread {
	t, err := s.RegisterCore()
	if err != nil {
		panic(err)
	}
	return t
}

func mustAlloc(t *core.Thread) arena.Handle {
	h, err := t.AllocNode()
	if err != nil {
		panic(err)
	}
	return h
}

// noteCoreStats folds the interesting per-thread counters into the
// world's notes so explorers and regression tests can assert a schedule
// actually exercised helping.
func noteCoreStats(w *World, threads ...*core.Thread) {
	for _, ct := range threads {
		st := ct.Stats()
		w.Note("helps-given", int64(st.HelpsGiven))
		w.Note("helps-received", int64(st.HelpsReceived))
		w.Note("alloc-helped", int64(st.AllocHelped))
		w.Note("cas-failures", int64(st.CASFailures))
	}
}

// --- deref-vs-swap ----------------------------------------------------------

// buildDerefVsSwap is the announcement-answer vs SWAP race scenario: a
// reader announces and dereferences a root link while two writers CAS
// it to fresh targets, each CAS obligated to help the announcement
// (paper Figure 4, D1–D10 vs H1–H8).  The recorded history is checked
// against the sequential CAS-register spec; the quiescent audit checks
// reference counts and announcement-row hygiene.  With legacy true the
// scenario reverts the annRow.index lifecycle fix — the standing
// injected bug the explorer must find.
func buildDerefVsSwap(legacy bool) func(w *World) {
	return func(w *World) {
		// Headroom note: each setup AllocNode may strand one extra node
		// in another thread's annAlloc cell via the A12 helping grant,
		// so the arena is sized above the three live nodes.
		ar := arena.MustNew(arena.Config{Nodes: 6, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
		s := core.MustNew(ar, core.Config{Threads: 3})
		if legacy {
			s.TestingSetLegacyAnnIndex(true)
		}
		tR, tB, tC := mustRegister(s), mustRegister(s), mustRegister(s)
		root := ar.NewRoot()
		hA, hB, hC := mustAlloc(tR), mustAlloc(tR), mustAlloc(tR)
		tR.StoreLink(root, arena.MakePtr(hA, false))
		tR.ReleaseRef(hA) // the root link's reference keeps hA alive
		w.Lincheck(lincheck.CASRegisterModel{Start: uint64(hA)})

		w.Spawn("reader", func(t *T) {
			t.Instrument(tR)
			for i := 0; i < 2; i++ {
				t.Record("read", 0, func() uint64 {
					p := tR.DeRefLink(root)
					h := p.Handle()
					if h != arena.Nil {
						tR.ReleaseRef(h)
					}
					return uint64(h)
				})
			}
		})
		swapper := func(name string, ct *core.Thread, oldH, newH arena.Handle) {
			w.Spawn(name, func(t *T) {
				t.Instrument(ct)
				t.Record("cas", lincheck.CASArg(uint64(oldH), uint64(newH)), func() uint64 {
					if ct.CASLink(root, arena.MakePtr(oldH, false), arena.MakePtr(newH, false)) {
						w.Note("cas-ok", 1)
						return 1
					}
					return 0
				})
				ct.ReleaseRef(newH) // drop the setup-held guard on the new node
			})
		}
		swapper("cas-b", tB, hA, hB)
		swapper("cas-c", tC, hA, hC)

		w.AtEnd(func() error {
			for _, ct := range []*core.Thread{tR, tB, tC} {
				ct.SetHook(nil)
				ct.Unregister()
			}
			noteCoreStats(w, tR, tB, tC)
			return SortedErrors(s.Audit(nil))
		})
	}
}

// --- helper-pin-vs-free -----------------------------------------------------

// buildHelperPinVsFree races helper pins against node reclamation: two
// writers repeatedly install freshly allocated nodes into the root link
// while a reader announces dereferences.  Every successful CAS helps
// pending announcements (H4 pins a slot while the replaced node's last
// reference may be released), and every replaced node dies, driving
// FreeNode's annAlloc handoff (F3) against the allocators (A4/A12) —
// the helper-pin vs FreeNode race.
func buildHelperPinVsFree(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 12, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 3})
	tR, tW1, tW2 := mustRegister(s), mustRegister(s), mustRegister(s)
	root := ar.NewRoot()
	h0 := mustAlloc(tR)
	tR.StoreLink(root, arena.MakePtr(h0, false))
	tR.ReleaseRef(h0)

	w.Spawn("reader", func(t *T) {
		t.Instrument(tR)
		for i := 0; i < 3; i++ {
			p := tR.DeRefLink(root)
			if h := p.Handle(); h != arena.Nil {
				tR.ReleaseRef(h)
			}
			w.Note("reads", 1)
		}
	})
	writer := func(name string, ct *core.Thread) {
		w.Spawn(name, func(t *T) {
			t.Instrument(ct)
			for k := 0; k < 2; k++ {
				n, err := ct.AllocNode()
				if err != nil {
					w.Note("oom", 1)
					return
				}
				for {
					old := ct.DeRefLink(root)
					ok := ct.CASLink(root, old, arena.MakePtr(n, false))
					if h := old.Handle(); h != arena.Nil {
						ct.ReleaseRef(h)
					}
					if ok {
						w.Note("installs", 1)
						break
					}
				}
				ct.ReleaseRef(n)
			}
		})
	}
	writer("writer-1", tW1)
	writer("writer-2", tW2)

	w.AtEnd(func() error {
		for _, ct := range []*core.Thread{tR, tW1, tW2} {
			ct.SetHook(nil)
			ct.Unregister()
		}
		noteCoreStats(w, tR, tW1, tW2)
		if w.notes["oom"] > 0 {
			return fmt.Errorf("allocation reported out-of-memory with %d free nodes", ar.Nodes())
		}
		return SortedErrors(s.Audit(nil))
	})
}

// --- alloc-oom --------------------------------------------------------------

// buildAllocOOM exercises AllocNode's bounded-retry out-of-memory path
// (paper footnote 4): two allocators over a 2-node arena each request
// two nodes and hold them across a barrier, so at least two requests
// must exhaust the retry limit and surface ErrOutOfMemory — without
// leaking announcement state or free-list nodes, which the end audit
// verifies after the holders release.
func buildAllocOOM(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 2, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2, AllocRetryLimit: 48})
	tA, tB := mustRegister(s), mustRegister(s)
	arrived := 0

	allocator := func(name string, ct *core.Thread) {
		w.Spawn(name, func(t *T) {
			t.Instrument(ct)
			var held []arena.Handle
			for k := 0; k < 2; k++ {
				h, err := ct.AllocNode()
				if err == core.ErrOutOfMemory {
					w.Note("oom", 1)
					continue
				}
				if err != nil {
					panic(err)
				}
				w.Note("alloc-ok", 1)
				held = append(held, h)
			}
			arrived++
			// Hold the allocations until both threads have attempted
			// theirs, so the 4 requests against 2 nodes are guaranteed
			// to exercise the out-of-memory path on every schedule.
			t.BlockUntil(func() bool { return arrived == 2 })
			for _, h := range held {
				ct.ReleaseRef(h)
			}
		})
	}
	allocator("alloc-a", tA)
	allocator("alloc-b", tB)

	w.AtEnd(func() error {
		for _, ct := range []*core.Thread{tA, tB} {
			ct.SetHook(nil)
			ct.Unregister()
		}
		noteCoreStats(w, tA, tB)
		if w.notes["oom"] == 0 {
			return fmt.Errorf("expected at least one ErrOutOfMemory (4 requests, 2 nodes), got none")
		}
		// Exactly 2 nodes exist, so at most 2 of the 4 requests succeed;
		// fewer is legal (an A12 grant can strand a node at a thread
		// that has finished allocating), but at least one must win.
		if ok := w.notes["alloc-ok"]; ok < 1 || ok > 2 {
			return fmt.Errorf("expected 1 or 2 successful allocations, got %d", ok)
		}
		return SortedErrors(s.Audit(nil))
	})
}

// --- chaos-stall ------------------------------------------------------------

// buildChaosStall routes the chaos layer's stall machinery through the
// scheduler: a writer is armed to park at its next operation boundary
// (simulating a crashed thread), the reader must still finish its
// dereferences — the wait-freedom claim — and a supervisor releases the
// stall only after the reader is done, whereupon the writer completes
// and the usual audits run.
func buildChaosStall(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 6, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	inner := core.MustNew(ar, core.Config{Threads: 2})
	cs := chaos.New(inner, chaos.Config{
		Seed:    1,
		Park:    w.Parker(),
		Gosched: w.GoschedFn(),
	})
	ctW, err := cs.RegisterChaos()
	if err != nil {
		panic(err)
	}
	ctR, err := cs.RegisterChaos()
	if err != nil {
		panic(err)
	}
	root := ar.NewRoot()
	h0, err := ctW.Alloc()
	if err != nil {
		panic(err)
	}
	ctW.StoreLink(root, arena.MakePtr(h0, false))
	ctW.Release(h0)
	ctW.StallNextOp() // the writer's first operation will park

	readerDone := false
	w.Spawn("writer", func(t *T) {
		ctW.SetPointObserver(t.YieldPoint)
		h, err := ctW.Alloc() // parks at the boundary until ReleaseStalls
		if err != nil {
			panic(err)
		}
		old := ctW.DeRef(root)
		if !ctW.CASLink(root, old, arena.MakePtr(h, false)) {
			panic("chaos-stall: uncontended CAS failed")
		}
		if oh := old.Handle(); oh != arena.Nil {
			ctW.Release(oh)
		}
		ctW.Release(h)
		w.Note("writer-done", 1)
	})
	w.Spawn("reader", func(t *T) {
		ctR.SetPointObserver(t.YieldPoint)
		for i := 0; i < 3; i++ {
			p := ctR.DeRef(root)
			if h := p.Handle(); h != arena.Nil {
				ctR.Release(h)
			}
			w.Note("reads", 1)
		}
		readerDone = true
	})
	w.Spawn("supervisor", func(t *T) {
		t.BlockOn(ctW.Parked())
		w.Note("saw-park", 1)
		// The stalled writer must not block the reader: wait for the
		// reader to finish every operation before releasing the stall.
		t.BlockUntil(func() bool { return readerDone })
		cs.ReleaseStalls()
	})

	w.AtEnd(func() error {
		ctW.SetPointObserver(nil)
		ctR.SetPointObserver(nil)
		ctW.Unregister()
		ctR.Unregister()
		if w.notes["reads"] != 3 || w.notes["writer-done"] != 1 || w.notes["saw-park"] != 1 {
			return fmt.Errorf("scenario incomplete: notes %v", w.notes)
		}
		if v := cs.Violations(); len(v) > 0 {
			return fmt.Errorf("wait-freedom budget violated: %s", v[0])
		}
		return SortedErrors(inner.Audit(nil))
	})
}

// --- queue-spsc -------------------------------------------------------------

// buildQueueSPSC drives the lock-free queue (over the wait-free scheme)
// with one producer and one consumer under full instrumentation,
// asserting FIFO order and a clean audit.
func buildQueueSPSC(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 10, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 4})
	s := core.MustNew(ar, core.Config{Threads: 2})
	tP, tC := mustRegister(s), mustRegister(s)
	q, err := queue.New(s, tP)
	if err != nil {
		panic(err)
	}
	const items = 3
	produced, consumed := 0, 0

	w.Spawn("producer", func(t *T) {
		t.Instrument(tP)
		for v := uint64(1); v <= items; v++ {
			if err := q.Enqueue(tP, v); err != nil {
				panic(err)
			}
			produced++
		}
	})
	w.Spawn("consumer", func(t *T) {
		t.Instrument(tC)
		next := uint64(1)
		for consumed < items {
			t.BlockUntil(func() bool { return produced > consumed })
			v, ok := q.Dequeue(tC)
			if !ok {
				continue
			}
			if v != next {
				panic(fmt.Sprintf("queue-spsc: dequeued %d, want %d (FIFO violated)", v, next))
			}
			next++
			consumed++
		}
	})

	w.AtEnd(func() error {
		tP.SetHook(nil)
		tC.SetHook(nil)
		if rest := q.Drain(tC); len(rest) != 0 {
			return fmt.Errorf("queue not empty after consuming %d items: %v", items, rest)
		}
		tP.Unregister()
		tC.Unregister()
		noteCoreStats(w, tP, tC)
		return SortedErrors(s.Audit(nil))
	})
}

// --- DFS minis --------------------------------------------------------------

// buildDFSDerefPair is the exhaustive-exploration version of
// deref-vs-swap: one reader, one writer, sparse instrumentation (the
// reader yields only at D3/D4/D6, the writer only at H2/H4/H6/R2) so
// the schedule space is small enough to enumerate completely.
func buildDFSDerefPair(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 4, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2})
	tR, tW := mustRegister(s), mustRegister(s)
	root := ar.NewRoot()
	hA, hB := mustAlloc(tR), mustAlloc(tR)
	tR.StoreLink(root, arena.MakePtr(hA, false))
	tR.ReleaseRef(hA)
	w.Lincheck(lincheck.CASRegisterModel{Start: uint64(hA)})

	w.Spawn("reader", func(t *T) {
		t.InstrumentPoints(tR, core.PD3, core.PD4, core.PD6)
		t.Record("read", 0, func() uint64 {
			p := tR.DeRefLink(root)
			h := p.Handle()
			if h != arena.Nil {
				tR.ReleaseRef(h)
			}
			return uint64(h)
		})
	})
	w.Spawn("writer", func(t *T) {
		t.InstrumentPoints(tW, core.PH2, core.PH4, core.PH6, core.PR2)
		t.Record("cas", lincheck.CASArg(uint64(hA), uint64(hB)), func() uint64 {
			if tW.CASLink(root, arena.MakePtr(hA, false), arena.MakePtr(hB, false)) {
				return 1
			}
			return 0
		})
		tW.ReleaseRef(hB)
	})

	w.AtEnd(func() error {
		tR.SetHook(nil)
		tW.SetHook(nil)
		tR.Unregister()
		tW.Unregister()
		noteCoreStats(w, tR, tW)
		return SortedErrors(s.Audit(nil))
	})
}

// buildDFSAllocFree enumerates the allocator handoff: two threads each
// allocate and release one node from a 2-node arena, yielding at the
// free-list CAS points (A9/A12) and the FreeNode annAlloc offer (F3).
// The recorded history is checked against the sequential allocator spec
// (paper Definition 1).
func buildDFSAllocFree(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 2, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2})
	tA, tB := mustRegister(s), mustRegister(s)
	w.Lincheck(lincheck.AllocModel{Nodes: ar.Nodes()})

	body := func(ct *core.Thread) func(*T) {
		return func(t *T) {
			t.InstrumentPoints(ct, core.PA9, core.PA12, core.PF3)
			var h arena.Handle
			t.RecordIf("alloc", 0, func() (uint64, bool) {
				hh, err := ct.AllocNode()
				if err == core.ErrOutOfMemory {
					// Legal under some schedules: both nodes can be in
					// flight at the suspended peer (held or granted),
					// so the bounded retry correctly reports exhaustion.
					w.Note("oom", 1)
					return 0, false
				}
				if err != nil {
					panic(err)
				}
				h = hh
				return uint64(hh), true
			})
			if h == arena.Nil {
				return
			}
			t.Record("free", uint64(h), func() uint64 {
				ct.ReleaseRef(h)
				return 0
			})
		}
	}
	w.Spawn("alloc-a", body(tA))
	w.Spawn("alloc-b", body(tB))

	w.AtEnd(func() error {
		tA.SetHook(nil)
		tB.SetHook(nil)
		tA.Unregister()
		tB.Unregister()
		noteCoreStats(w, tA, tB)
		return SortedErrors(s.Audit(nil))
	})
}

// --- deferred-flush-vs-help -------------------------------------------------

// buildDeferredFlushVsHelp races the deferred variant's flush against
// the helping protocol.  The owner's delta cache holds a pending
// decrement for the root's target from setup; the owner then announces
// a dereference of that same node (announced path forced) and flushes
// while its dereference guard — a pin, or a helper-granted counted
// reference when the writer answers at D6 — is still live.  The flush
// applies the pending decrement, which may drive the applied count to
// zero, but the ZCT drain must never claim the node for reclamation
// while the guard exists: pinnedByAny keeps pinned candidates, and a
// counted guard keeps the count nonzero.  The mid-run oddness check
// (mm_ref odd means the CAS(0,1) election was won) plus the quiescent
// audit assert exactly that on every explored interleaving.
func buildDeferredFlushVsHelp(w *World) {
	ar := arena.MustNew(arena.Config{Nodes: 6, LinksPerNode: 1, ValsPerNode: 1, RootLinks: 1})
	s := core.MustNew(ar, core.Config{Threads: 2, Deferred: true})
	s.TestingSetDeferredForceAnnounce(true)
	tO, tW := mustRegister(s), mustRegister(s)
	root := ar.NewRoot()
	hA, hB := mustAlloc(tO), mustAlloc(tO)
	tO.StoreLink(root, arena.MakePtr(hA, false))
	tO.ReleaseRef(hA) // buffered: the pending decrement the flush will apply

	w.Spawn("owner", func(t *T) {
		t.Instrument(tO)
		p := tO.DeRefLink(root)
		w.Note("owner-deref", 1)
		tO.Flush() // applies the setup decrement under the live guard
		w.Note("owner-flush", 1)
		if h := p.Handle(); h != arena.Nil {
			if ref := ar.Ref(h).Load(); ref&1 != 0 {
				panic(fmt.Sprintf(
					"deferred-flush-vs-help: guarded node %d claimed for reclamation (mm_ref=%d)", h, ref))
			}
			tO.ReleaseRef(h)
		}
		tO.Flush()
		w.Note("owner-flush", 1)
	})
	w.Spawn("writer", func(t *T) {
		t.Instrument(tW)
		if tW.CASLink(root, arena.MakePtr(hA, false), arena.MakePtr(hB, false)) {
			w.Note("installs", 1)
		}
		tW.ReleaseRef(hB)
		tW.Flush()
		w.Note("writer-flush", 1)
	})

	w.AtEnd(func() error {
		for _, ct := range []*core.Thread{tO, tW} {
			ct.SetHook(nil)
			ct.Unregister()
		}
		noteCoreStats(w, tO, tW)
		if w.notes["installs"] != 1 {
			return fmt.Errorf("uncontended CAS install failed (installs=%d)", w.notes["installs"])
		}
		return SortedErrors(s.Audit(nil))
	})
}

func init() {
	Register(Scenario{
		Name:  "deref-vs-swap",
		About: "reader announcement vs two CAS writers; lincheck CAS-register spec + audits",
		Build: buildDerefVsSwap(false),
	})
	Register(Scenario{
		Name:  "legacy-annindex",
		About: "injected bug: annRow.index lifecycle fix reverted; audit must flag every schedule",
		Build: buildDerefVsSwap(true),
		// The exact wording of audit.go's AuditAnnRows H2-hygiene error.
		ExpectFailure: "H2 hygiene",
	})
	Register(Scenario{
		Name:  "helper-pin-vs-free",
		About: "helper slot pins racing node reclamation and the annAlloc handoff",
		Build: buildHelperPinVsFree,
	})
	Register(Scenario{
		Name:  "alloc-oom",
		About: "bounded-retry out-of-memory detection with held nodes; no leaked announcements",
		Build: buildAllocOOM,
	})
	Register(Scenario{
		Name:  "chaos-stall",
		About: "chaos-layer stall routed through the scheduler; reader progresses past a parked writer",
		Build: buildChaosStall,
	})
	Register(Scenario{
		Name:  "queue-spsc",
		About: "lock-free queue, one producer one consumer, FIFO assertion under full instrumentation",
		Build: buildQueueSPSC,
	})
	Register(Scenario{
		Name:  "deferred-flush-vs-help",
		About: "deferred variant: ZCT flush under a live guard vs a helper answering at D6; guarded node must survive",
		Build: buildDeferredFlushVsHelp,
	})
	Register(Scenario{
		Name:  "dfs-deref-pair",
		About: "exhaustive: one announced dereference vs one helping CAS, sparse yield points",
		Build: buildDFSDerefPair,
		DFSOK: true,
	})
	Register(Scenario{
		Name:  "dfs-alloc-free",
		About: "exhaustive: two allocate/release pairs over a 2-node arena, allocator handoff points",
		Build: buildDFSAllocFree,
		DFSOK: true,
	})
}
