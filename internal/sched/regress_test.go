package sched

import (
	"strconv"
	"strings"
	"testing"
)

// regressionSeeds is the corpus of known-nasty PCT seeds.  Each entry
// pins a schedule (found by scanning seeds and inspecting the helping
// counters) that drives one of the historically fragile interleavings:
//
//   - announcement-answer vs SWAP: a reader publishes its announcement
//     (D3) and is suspended; a swapper's CASLink SWAP observes the
//     announcement and answers it via HelpDeRef while the reader is
//     still parked mid-DeRefLink.  The reader must wake to a granted,
//     correctly pinned reference (helps-given/received > 0 proves the
//     path ran).
//   - helper-pin vs FreeNode: a helper holds a transient pin on a node
//     whose last link is being removed; the concurrent ReleaseRef chain
//     must not reach FreeNode until the helper's pin is dropped, and
//     the end-of-run audit verifies no node leaked or double-freed.
//
// The minNotes thresholds assert the race actually fired — if a core
// change reroutes these schedules away from the helping path, the test
// fails loudly rather than silently passing on an empty schedule.
var regressionSeeds = []struct {
	scenario string
	seed     int64
	about    string
	// minNotes gives lower bounds on note counters proving the
	// targeted interleaving was exercised.
	minNotes map[string]int64
	// wantFailure, when non-empty, marks a seed that must FAIL with a
	// verdict containing this substring (injected-bug corpus entries).
	wantFailure string
}{
	{
		scenario: "deref-vs-swap",
		seed:     7,
		about:    "reader parked after announcing; swapper's SWAP answers it",
		minNotes: map[string]int64{"helps-given": 1, "helps-received": 1},
	},
	{
		scenario: "deref-vs-swap",
		seed:     21,
		about:    "second swapper answers while the first swapper retries",
		minNotes: map[string]int64{"helps-given": 1, "helps-received": 1, "cas-failures": 1},
	},
	{
		scenario: "deref-vs-swap",
		seed:     39,
		about:    "help granted between the reader's two recorded reads",
		minNotes: map[string]int64{"helps-given": 1, "helps-received": 1},
	},
	{
		scenario: "helper-pin-vs-free",
		seed:     88,
		about:    "two helping grants while writers race unlink+release toward FreeNode",
		minNotes: map[string]int64{"helps-given": 2, "helps-received": 2},
	},
	{
		scenario: "helper-pin-vs-free",
		seed:     94,
		about:    "helper pin outstanding across a ReleaseRef of the pinned node",
		minNotes: map[string]int64{"helps-given": 1, "installs": 4},
	},
	{
		scenario: "helper-pin-vs-free",
		seed:     97,
		about:    "failed CAS forces re-deref of a node another thread is freeing",
		minNotes: map[string]int64{"helps-given": 1, "cas-failures": 1},
	},
	{
		scenario: "deferred-flush-vs-help",
		seed:     7,
		about:    "writer answers the owner's announcement at D6 while the owner's delta cache holds the target's pending decrement; both flushes run with the guard live",
		minNotes: map[string]int64{
			"helps-given": 1, "helps-received": 1,
			"owner-flush": 2, "writer-flush": 1, "installs": 1,
		},
	},
	{
		scenario: "slot-lease-churn",
		seed:     11,
		about:    "writer's CAS helps a lessee's announcement across a lease release boundary",
		minNotes: map[string]int64{"helps-given": 1, "leases": 4, "recycles": 4},
	},
	{
		scenario: "slot-lease-churn",
		seed:     69,
		about:    "release-time reuse audit sees the suspended writer's helper pin; slot quarantined then re-audited clean",
		minNotes: map[string]int64{"quarantines": 1, "leases": 4, "recycles": 4},
	},
	{
		scenario: "hyaline-retire-vs-help",
		seed:     3,
		about:    "both dispatches lodge in the reader's slot; its leave traversal frees both batches",
		minNotes: map[string]int64{"dispatches": 2, "reader-frees": 6, "retires": 6},
	},
	{
		scenario: "hyaline-retire-vs-help",
		seed:     6,
		about:    "reader leaves between dispatches: its traversal frees batch one, the retirer's adjustment frees batch two",
		minNotes: map[string]int64{"dispatches": 2, "reader-frees": 3, "retirer-frees": 3},
	},
	{
		scenario: "value-free-vs-help",
		seed:     13,
		about:    "reader's help answers the replacer's announcement while the displaced node's value blocks await the free hook",
		minNotes: map[string]int64{"helps-given": 1, "helps-received": 1, "hook-frees": 3, "replaces": 3},
	},
	{
		scenario: "value-free-vs-help",
		seed:     9,
		about:    "every read lands in Replace's delete-insert window; all three displaced value words still reach the hook",
		minNotes: map[string]int64{"read-misses": 3, "hook-frees": 3, "reads": 3},
	},
	{
		scenario:    "legacy-annindex",
		seed:        7,
		about:       "the announcement-answer schedule with the annRow.index fix reverted",
		minNotes:    map[string]int64{"helps-given": 1},
		wantFailure: "H2 hygiene",
	},
}

// TestRegressionSeeds replays the corpus: every seed must reproduce its
// recorded verdict, exercise the targeted race (note thresholds), and
// replay identically from its own recorded trace.
func TestRegressionSeeds(t *testing.T) {
	for _, c := range regressionSeeds {
		c := c
		t.Run(c.scenario+"/seed="+strconv.FormatInt(c.seed, 10), func(t *testing.T) {
			sc, ok := Lookup(c.scenario)
			if !ok {
				t.Fatalf("scenario %q missing", c.scenario)
			}
			out := RunPCTSeed(sc, c.seed, PCTOptions{})
			if c.wantFailure == "" {
				if out.Failed() {
					t.Fatalf("%s: seed %d regressed: %s\n  replay: %s", c.about, c.seed, out.Failure, out.Hint())
				}
			} else if !out.Failed() || !strings.Contains(out.Failure, c.wantFailure) {
				t.Fatalf("%s: seed %d no longer detects the bug: got %q, want substring %q",
					c.about, c.seed, out.Failure, c.wantFailure)
			}
			for note, min := range c.minNotes {
				if out.Notes[note] < min {
					t.Errorf("%s: seed %d note %s = %d, want >= %d (schedule no longer drives the race; notes: %s)",
						c.about, c.seed, note, out.Notes[note], min, out.NotesLine())
				}
			}
			// The recorded trace must reproduce the verdict byte for byte.
			again := ReplayTrace(sc, out.Trace, sc.MaxSteps)
			if again.Failure != out.Failure {
				t.Fatalf("%s: trace replay verdict differs:\n  %q\n  %q", c.about, out.Failure, again.Failure)
			}
			if again.Trace.Encode() != out.Trace.Encode() {
				t.Fatalf("%s: trace replay rewrote the schedule:\n  %s\n  %s",
					c.about, out.Trace.Encode(), again.Trace.Encode())
			}
			for note, min := range c.minNotes {
				if again.Notes[note] < min {
					t.Errorf("%s: trace replay lost note %s (= %d, want >= %d)",
						c.about, note, again.Notes[note], min)
				}
			}
		})
	}
}
