package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome is the result of one scheduled run of a scenario.
type Outcome struct {
	// Scenario is the scenario name.
	Scenario string
	// Strategy names how the schedule was produced: "pct", "dfs",
	// "random" or "replay".
	Strategy string
	// Seed reproduces the schedule for seeded strategies (pct, random).
	Seed int64
	// Trace is the schedule taken; it replays byte-for-byte via
	// ReplayTrace regardless of strategy.
	Trace Trace
	// Failure is the first failure, or "" if the run passed.
	Failure string
	// Notes are the scenario's Note counters (helps given, OOMs seen,
	// ...), for asserting a schedule actually exercised a mechanism.
	Notes map[string]int64
}

// Failed reports whether the run failed.
func (o *Outcome) Failed() bool { return o.Failure != "" }

// Hint renders the go test invocation that deterministically replays
// this outcome — the line printed next to every counterexample.
func (o *Outcome) Hint() string {
	if o.Strategy == "pct" || o.Strategy == "random" {
		return fmt.Sprintf("go test ./internal/sched -run 'TestSchedReplay$' -sched.scenario=%s -sched.seed=%d",
			o.Scenario, o.Seed)
	}
	return fmt.Sprintf("go test ./internal/sched -run 'TestSchedReplay$' -sched.scenario=%s -sched.trace=%s",
		o.Scenario, o.Trace.Encode())
}

// NotesLine renders the note counters deterministically (sorted keys).
func (o *Outcome) NotesLine() string {
	if len(o.Notes) == 0 {
		return ""
	}
	keys := make([]string, 0, len(o.Notes))
	for k := range o.Notes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, o.Notes[k])
	}
	return strings.Join(parts, " ")
}

// Report summarizes an exploration of one scenario.
type Report struct {
	// Scenario is the scenario name.
	Scenario string
	// Schedules is how many distinct schedules ran.
	Schedules int
	// Complete is true when a DFS exploration exhausted the schedule
	// space (rather than stopping at MaxSchedules).
	Complete bool
	// Failures holds every failing outcome, in discovery order.
	Failures []*Outcome
	// Notes aggregates the note counters over all runs.
	Notes map[string]int64
}

// FirstFailure returns the first failing outcome, or nil.
func (r *Report) FirstFailure() *Outcome {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0]
}

func (r *Report) absorb(o *Outcome) {
	if o.Failed() {
		r.Failures = append(r.Failures, o)
	}
	r.Schedules++
	for k, v := range o.Notes {
		r.Notes[k] += v
	}
}

// runScenario builds a fresh world for sc, runs it under strat and
// packages the outcome.
func runScenario(sc Scenario, strat Strategy, maxSteps int) *Outcome {
	if maxSteps <= 0 {
		maxSteps = sc.MaxSteps
	}
	w := NewWorld(Config{Strategy: strat, MaxSteps: maxSteps})
	sc.Build(w)
	out := &Outcome{Scenario: sc.Name}
	if err := w.Run(); err != nil {
		out.Failure = err.Error()
	}
	out.Trace = w.Trace()
	out.Notes = w.Notes()
	return out
}

// PCTOptions parameterizes ExplorePCT / RunPCTSeed.
type PCTOptions struct {
	// Seed is the base seed; schedule i runs with Seed+i.
	Seed int64
	// Schedules is the number of seeds to try (default 20).
	Schedules int
	// Depth is the number of PCT priority change points (default: the
	// scenario's suggested depth, then 3).
	Depth int
	// Horizon is the change-point placement window (default 64; see
	// PCT.Horizon on why it must track real schedule lengths).
	Horizon int
	// MaxSteps overrides the per-run step budget.
	MaxSteps int
	// KeepGoing explores every seed even after a failure (default:
	// stop at the first counterexample).
	KeepGoing bool
}

func (opts *PCTOptions) depthFor(sc Scenario) int {
	switch {
	case opts.Depth > 0:
		return opts.Depth
	case sc.Depth > 0:
		return sc.Depth
	default:
		return 3
	}
}

// RunPCTSeed runs one PCT schedule of sc from the given seed.
func RunPCTSeed(sc Scenario, seed int64, opts PCTOptions) *Outcome {
	strat := &PCT{Seed: seed, Depth: opts.depthFor(sc), Horizon: opts.Horizon}
	out := runScenario(sc, strat, opts.MaxSteps)
	out.Strategy = "pct"
	out.Seed = seed
	return out
}

// ExplorePCT runs PCT schedules of sc over consecutive seeds.
func ExplorePCT(sc Scenario, opts PCTOptions) *Report {
	if opts.Schedules <= 0 {
		opts.Schedules = 20
	}
	r := &Report{Scenario: sc.Name, Notes: map[string]int64{}}
	for i := 0; i < opts.Schedules; i++ {
		out := RunPCTSeed(sc, opts.Seed+int64(i), opts)
		r.absorb(out)
		if out.Failed() && !opts.KeepGoing {
			break
		}
	}
	return r
}

// DFSOptions parameterizes ExploreDFS.
type DFSOptions struct {
	// MaxSchedules bounds the enumeration (default 20000).
	MaxSchedules int
	// MaxSteps overrides the per-run step budget.
	MaxSteps int
	// KeepGoing explores past the first failure.
	KeepGoing bool
}

// ExploreDFS enumerates sc's schedules exhaustively in depth-first
// order, up to MaxSchedules.  Report.Complete tells whether the whole
// space was covered.  Scenarios meant for DFS keep the branching down
// with sparse instrumentation (InstrumentPoints).
func ExploreDFS(sc Scenario, opts DFSOptions) *Report {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 20000
	}
	r := &Report{Scenario: sc.Name, Notes: map[string]int64{}}
	var prefix []int
	for r.Schedules < opts.MaxSchedules {
		strat := &dfs{prefix: prefix}
		out := runScenario(sc, strat, opts.MaxSteps)
		out.Strategy = "dfs"
		r.absorb(out)
		if out.Failed() && !opts.KeepGoing {
			return r
		}
		prefix = nextPrefix(strat.choices)
		if prefix == nil {
			r.Complete = true
			return r
		}
	}
	return r
}

// ReplayTrace re-executes a recorded schedule of sc.  The outcome's
// Trace equals tr when the replay stayed on the recorded schedule to
// the end (World.Run stops extending the trace at the first failure,
// so a counterexample reproduces exactly).
func ReplayTrace(sc Scenario, tr Trace, maxSteps int) *Outcome {
	out := runScenario(sc, ReplayStrategy(tr), maxSteps)
	out.Strategy = "replay"
	return out
}
