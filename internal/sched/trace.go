package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Trace is a schedule: the sequence of thread ids chosen at each
// scheduling step.  It is the one schedule encoding shared by the
// deterministic scheduler's explorers and the micro-step model explorer
// (internal/model), so a counterexample from either replays through the
// same parser.
type Trace []int

// Encode renders the trace in the compact replay format: the version
// tag "t1:" followed by comma-separated runs, each either a bare thread
// id ("2") or a run-length pair ("2x5" = thread 2 scheduled five times
// in a row).  The empty trace encodes as "t1:".
func (tr Trace) Encode() string {
	var b strings.Builder
	b.WriteString("t1:")
	for i := 0; i < len(tr); {
		j := i
		for j < len(tr) && tr[j] == tr[i] {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(tr[i]))
		if n := j - i; n > 1 {
			b.WriteByte('x')
			b.WriteString(strconv.Itoa(n))
		}
		i = j
	}
	return b.String()
}

// String formats the trace like a plain int slice, so existing %v
// call sites (the model explorer's reports) keep their output.
func (tr Trace) String() string {
	parts := make([]string, len(tr))
	for i, id := range tr {
		parts[i] = strconv.Itoa(id)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// DecodeTrace parses the Encode format back into a Trace.
func DecodeTrace(s string) (Trace, error) {
	const tag = "t1:"
	if !strings.HasPrefix(s, tag) {
		return nil, fmt.Errorf("sched: trace %q lacks the %q version tag", s, tag)
	}
	body := s[len(tag):]
	if body == "" {
		return Trace{}, nil
	}
	var tr Trace
	for _, run := range strings.Split(body, ",") {
		idStr, cntStr, hasCnt := strings.Cut(run, "x")
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("sched: bad thread id %q in trace", idStr)
		}
		n := 1
		if hasCnt {
			n, err = strconv.Atoi(cntStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("sched: bad run length %q in trace", cntStr)
			}
		}
		for k := 0; k < n; k++ {
			tr = append(tr, id)
		}
	}
	return tr, nil
}
