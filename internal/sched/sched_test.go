package sched

import (
	"fmt"
	"strings"
	"testing"
)

// TestTraceRoundTrip exercises the shared schedule encoding both ways.
func TestTraceRoundTrip(t *testing.T) {
	cases := []Trace{
		{},
		{0},
		{1, 1, 1, 1},
		{0, 1, 0, 1},
		{2, 2, 0, 1, 1, 1, 2},
		{7, 0, 0, 0, 0, 0, 5, 5, 12},
	}
	for _, tr := range cases {
		enc := tr.Encode()
		back, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("DecodeTrace(%q): %v", enc, err)
		}
		if back.Encode() != enc || len(back) != len(tr) {
			t.Fatalf("round trip %v -> %q -> %v", tr, enc, back)
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip %v -> %q -> %v", tr, enc, back)
			}
		}
	}
	if _, err := DecodeTrace("0,1"); err == nil {
		t.Fatal("DecodeTrace accepted an untagged trace")
	}
	if _, err := DecodeTrace("t1:1x0"); err == nil {
		t.Fatal("DecodeTrace accepted a zero run length")
	}
	if _, err := DecodeTrace("t1:-2"); err == nil {
		t.Fatal("DecodeTrace accepted a negative thread id")
	}
}

// TestEncodeRLE pins the compact format itself.
func TestEncodeRLE(t *testing.T) {
	got := Trace{0, 0, 0, 1, 2, 2}.Encode()
	if got != "t1:0x3,1,2x2" {
		t.Fatalf("Encode = %q, want %q", got, "t1:0x3,1,2x2")
	}
	if (Trace{}).Encode() != "t1:" {
		t.Fatalf("empty Encode = %q", (Trace{}).Encode())
	}
}

// TestSchedulerIsSerial checks the core contract: only one virtual
// thread runs at a time, and yields are the only switch points.
func TestSchedulerIsSerial(t *testing.T) {
	w := NewWorld(Config{Strategy: &Random{Seed: 1}})
	running := 0
	var order []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		w.Spawn(name, func(vt *T) {
			for k := 0; k < 5; k++ {
				running++
				if running != 1 {
					t.Errorf("%d virtual threads running at once", running)
				}
				order = append(order, name)
				running--
				vt.Yield()
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 15 {
		t.Fatalf("got %d segments, want 15", len(order))
	}
}

// TestDeterminism runs the same strategy twice over a scenario and
// requires identical traces, notes and verdicts.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Lookup(name)
		a := RunPCTSeed(sc, 7, PCTOptions{})
		b := RunPCTSeed(sc, 7, PCTOptions{})
		if a.Trace.Encode() != b.Trace.Encode() {
			t.Fatalf("%s: seed 7 traces differ:\n  %s\n  %s", name, a.Trace.Encode(), b.Trace.Encode())
		}
		if a.Failure != b.Failure {
			t.Fatalf("%s: seed 7 verdicts differ:\n  %q\n  %q", name, a.Failure, b.Failure)
		}
	}
}

// TestCleanScenariosPass explores every clean scenario over a spread of
// PCT seeds; none may fail.
func TestCleanScenariosPass(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Lookup(name)
		if sc.ExpectFailure != "" {
			continue
		}
		r := ExplorePCT(sc, PCTOptions{Seed: 1, Schedules: 15})
		if f := r.FirstFailure(); f != nil {
			t.Errorf("%s failed: %s\n  replay: %s", name, f.Failure, f.Hint())
		}
	}
}

// TestInjectedBugFound is the acceptance check for the standing
// injected bug: reverting the annRow.index lifecycle fix must be caught
// by the PCT explorer within the CI seed budget, and the counterexample
// must replay byte-for-byte from the printed seed.
func TestInjectedBugFound(t *testing.T) {
	sc, ok := Lookup("legacy-annindex")
	if !ok {
		t.Fatal("legacy-annindex scenario missing")
	}
	r := ExplorePCT(sc, PCTOptions{Seed: 1, Schedules: 20})
	f := r.FirstFailure()
	if f == nil {
		t.Fatalf("PCT explorer missed the injected bug in %d schedules", r.Schedules)
	}
	if !strings.Contains(f.Failure, sc.ExpectFailure) {
		t.Fatalf("failure %q does not mention %q", f.Failure, sc.ExpectFailure)
	}
	// Replay from the printed seed: identical schedule, identical verdict.
	again := RunPCTSeed(sc, f.Seed, PCTOptions{})
	if again.Trace.Encode() != f.Trace.Encode() {
		t.Fatalf("seed %d replay diverged:\n  %s\n  %s", f.Seed, f.Trace.Encode(), again.Trace.Encode())
	}
	if again.Failure != f.Failure {
		t.Fatalf("seed %d replay verdict differs:\n  %q\n  %q", f.Seed, f.Failure, again.Failure)
	}
	// Replay from the recorded trace too.
	byTrace := ReplayTrace(sc, f.Trace, sc.MaxSteps)
	if byTrace.Failure != f.Failure {
		t.Fatalf("trace replay verdict differs:\n  %q\n  %q", f.Failure, byTrace.Failure)
	}
}

// TestDFSExhaustive enumerates the schedule spaces of the DFS-suitable
// scenarios completely; every schedule must pass and the enumeration
// must visit more than a handful of interleavings to mean anything.
func TestDFSExhaustive(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Lookup(name)
		if !sc.DFSOK {
			continue
		}
		r := ExploreDFS(sc, DFSOptions{MaxSchedules: 50000})
		if f := r.FirstFailure(); f != nil {
			t.Fatalf("%s: schedule failed: %s\n  replay: %s", name, f.Failure, f.Hint())
		}
		if !r.Complete {
			t.Fatalf("%s: DFS did not complete within 50000 schedules", name)
		}
		if r.Schedules < 10 {
			t.Fatalf("%s: only %d schedules enumerated — instrumentation lost?", name, r.Schedules)
		}
		t.Logf("%s: %d schedules, notes: helps-given=%d", name, r.Schedules, r.Notes["helps-given"])
	}
}

// TestDFSFindsInjectedBug runs the DFS explorer over the injected-bug
// scenario restricted to a small prefix budget; exhaustive search must
// also catch it (every schedule fails the end audit).
func TestDFSFindsInjectedBug(t *testing.T) {
	base, _ := Lookup("legacy-annindex")
	sc := base
	sc.DFSOK = true
	r := ExploreDFS(sc, DFSOptions{MaxSchedules: 5})
	if f := r.FirstFailure(); f == nil {
		t.Fatal("DFS missed the injected bug")
	} else if !strings.Contains(f.Failure, base.ExpectFailure) {
		t.Fatalf("failure %q does not mention %q", f.Failure, base.ExpectFailure)
	}
}

// TestDeadlockDetected: two threads blocked on each other's conditions
// must be reported, not hung.
func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(Config{Strategy: &Random{Seed: 3}})
	aDone, bDone := false, false
	w.Spawn("a", func(vt *T) {
		vt.BlockUntil(func() bool { return bDone })
		aDone = true
	})
	w.Spawn("b", func(vt *T) {
		vt.BlockUntil(func() bool { return aDone })
		bDone = true
	})
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock report, got %v", err)
	}
}

// TestStepBudget: a spinning thread must trip the step budget rather
// than hang the scheduler.
func TestStepBudget(t *testing.T) {
	w := NewWorld(Config{Strategy: &Random{Seed: 3}, MaxSteps: 100})
	w.Spawn("spinner", func(vt *T) {
		for {
			vt.Yield()
		}
	})
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("want step-budget report, got %v", err)
	}
}

// TestThreadPanicReported: a panicking virtual thread fails the run
// with its message instead of crashing the process.
func TestThreadPanicReported(t *testing.T) {
	w := NewWorld(Config{Strategy: &Random{Seed: 3}})
	w.Spawn("boom", func(vt *T) {
		vt.Yield()
		panic("kaboom")
	})
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic report, got %v", err)
	}
}

// TestReplayDivergenceReported: replaying a trace against the wrong
// schedule shape errors out instead of silently exploring.
func TestReplayDivergenceReported(t *testing.T) {
	sc, _ := Lookup("dfs-deref-pair")
	out := ReplayTrace(sc, Trace{9, 9, 9}, 0)
	if !out.Failed() || !strings.Contains(out.Failure, "replay diverged") {
		t.Fatalf("want replay divergence, got %q", out.Failure)
	}
}

// TestAllocOOMUnderScheduler pins the out-of-memory satellite: the
// bounded-retry path must surface ErrOutOfMemory on every schedule and
// leave no leaked announcement slots (checked by the scenario's audit).
func TestAllocOOMUnderScheduler(t *testing.T) {
	sc, _ := Lookup("alloc-oom")
	r := ExplorePCT(sc, PCTOptions{Seed: 100, Schedules: 15, KeepGoing: true})
	if f := r.FirstFailure(); f != nil {
		t.Fatalf("alloc-oom failed: %s\n  replay: %s", f.Failure, f.Hint())
	}
	if r.Notes["oom"] < int64(r.Schedules) {
		t.Fatalf("only %d OOMs over %d schedules — the retry-exhaustion path was not exercised",
			r.Notes["oom"], r.Schedules)
	}
}

// TestSchedReplay is the replay entry point printed by Outcome.Hint.
// Without -sched.scenario it is a no-op (skips); with it, it replays
// the given seed or trace and reports the outcome, failing the test if
// a clean scenario fails or an injected-bug scenario does not fail as
// expected.
func TestSchedReplay(t *testing.T) {
	if *FlagScenario == "" {
		t.Skip("no -sched.scenario given")
	}
	sc, ok := Lookup(*FlagScenario)
	if !ok {
		t.Fatalf("unknown scenario %q; have %v", *FlagScenario, Names())
	}
	var out *Outcome
	switch {
	case *FlagTrace != "":
		tr, err := DecodeTrace(*FlagTrace)
		if err != nil {
			t.Fatalf("bad -sched.trace: %v", err)
		}
		out = ReplayTrace(sc, tr, sc.MaxSteps)
	case *FlagSeed >= 0:
		out = RunPCTSeed(sc, *FlagSeed, PCTOptions{})
	default:
		t.Fatal("need -sched.seed or -sched.trace with -sched.scenario")
	}
	t.Logf("scenario %s: trace %s", sc.Name, out.Trace.Encode())
	if notes := out.NotesLine(); notes != "" {
		t.Logf("notes: %s", notes)
	}
	if sc.ExpectFailure != "" {
		if !out.Failed() || !strings.Contains(out.Failure, sc.ExpectFailure) {
			t.Fatalf("expected failure containing %q, got %q", sc.ExpectFailure, out.Failure)
		}
		t.Logf("reproduced expected failure: %s", out.Failure)
		return
	}
	if out.Failed() {
		t.Fatalf("failure reproduced: %s", out.Failure)
	}
}
